//! §7.1 — scalability: DRAM capacity vs maximum classification scale, and
//! the multi-device scale-out plan.

use ecssd_core::scale::{run_scale_out, DramScaling, ScaleOutPlan, ScaleOutRun};
use ecssd_workloads::Benchmark;
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// One DRAM-size scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramRow {
    /// Device DRAM, GB.
    pub dram_gb: u64,
    /// Maximum categories a single ECSSD supports.
    pub max_categories: u64,
    /// DRAM power relative to the 16 GB design.
    pub relative_power: f64,
}

/// The §7.1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The 8/16/32 GB scenarios.
    pub rows: Vec<DramRow>,
    /// The 500M-category scale-out plan.
    pub scale_out: ScaleOutPlan,
    /// The plan *executed* on the simulator: per-device shard runs plus the
    /// measured parallel speedup over a single hypothetical device.
    pub executed: ScaleOutRun,
}

/// Runs the scalability analysis.
pub fn run() -> Report {
    let rows = [8u64, 16, 32]
        .into_iter()
        .map(|gb| {
            let d = DramScaling::paper_default().with_dram_gb(gb);
            DramRow {
                dram_gb: gb,
                max_categories: d.max_categories(),
                relative_power: d.relative_power(),
            }
        })
        .collect();
    let plan = ScaleOutPlan::plan(500_000_000, DramScaling::paper_default());
    let bench = Benchmark::by_abbrev("XMLCNN-S100M").expect("known");
    Report {
        rows,
        scale_out: plan,
        executed: run_scale_out(bench, plan, 1, 16).expect("fault-free run"),
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "§7.1 — scaling up (single-device DRAM capacity)")?;
        let mut t = TextTable::new(["DRAM", "max categories", "relative power"]);
        for r in &self.rows {
            t.row([
                format!("{} GB", r.dram_gb),
                format!("{:.1} M", r.max_categories as f64 / 1e6),
                format!("{:.2}x", r.relative_power),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "scaling out: {} categories -> {} ECSSDs, {:.1} M categories each (paper: 500M over 5 devices)",
            self.scale_out.categories,
            self.scale_out.devices,
            self.scale_out.per_device as f64 / 1e6
        )?;
        writeln!(
            f,
            "executed on the simulator: slowest shard {:.2} s/batch, measured parallel speedup {:.2}x over one device",
            self.executed.makespan_ns / 1e9,
            self.executed.speedup()
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn section71_numbers() {
        let r = super::run();
        assert!(r.rows[0].max_categories >= 50_000_000);
        assert!(r.rows[1].max_categories >= 100_000_000);
        assert!(r.rows[2].max_categories >= 200_000_000);
        assert!(r.rows[2].relative_power >= 1.4);
        assert_eq!(r.scale_out.devices, 5);
    }
}
