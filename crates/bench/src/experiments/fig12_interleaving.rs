//! Fig. 12: sequential storing vs uniform vs learning-based adaptive
//! interleaving on the four small benchmarks (paper: learned is 1.43× over
//! uniform and 7.57× over sequential on average).

use ecssd_core::MachineVariant;
use ecssd_layout::InterleavingStrategy;
use ecssd_workloads::{Benchmark, TraceConfig};
use serde::{Deserialize, Serialize};

use crate::experiments::common::{geomean, run_point, Window};
use crate::table::TextTable;

/// Per-benchmark times of the three strategies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRow {
    /// Benchmark abbreviation.
    pub benchmark: String,
    /// ns/query with sequential storing.
    pub sequential_ns: f64,
    /// ns/query with uniform interleaving.
    pub uniform_ns: f64,
    /// ns/query with learned interleaving.
    pub learned_ns: f64,
}

/// The Fig. 12 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// One row per small benchmark.
    pub rows: Vec<BenchRow>,
    /// Geomean speedup of learned over uniform (paper: 1.43×).
    pub learned_over_uniform: f64,
    /// Geomean speedup of learned over sequential (paper: 7.57×).
    pub learned_over_sequential: f64,
}

/// Runs the interleaving comparison.
pub fn run(window: Window) -> Report {
    let trace = TraceConfig::paper_default();
    let variant = |interleaving| MachineVariant {
        interleaving,
        ..MachineVariant::paper_ecssd()
    };
    let rows: Vec<BenchRow> = Benchmark::small_suite()
        .into_iter()
        .map(|bench| {
            let seq = run_point(
                bench,
                variant(InterleavingStrategy::Sequential),
                trace,
                window,
            );
            let uni = run_point(bench, variant(InterleavingStrategy::Uniform), trace, window);
            let lrn = run_point(bench, MachineVariant::paper_ecssd(), trace, window);
            BenchRow {
                benchmark: bench.abbrev.to_string(),
                sequential_ns: seq.ns_per_query(),
                uniform_ns: uni.ns_per_query(),
                learned_ns: lrn.ns_per_query(),
            }
        })
        .collect();
    let over_uniform: Vec<f64> = rows.iter().map(|r| r.uniform_ns / r.learned_ns).collect();
    let over_sequential: Vec<f64> = rows
        .iter()
        .map(|r| r.sequential_ns / r.learned_ns)
        .collect();
    Report {
        rows,
        learned_over_uniform: geomean(&over_uniform),
        learned_over_sequential: geomean(&over_sequential),
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 12 — storing-strategy comparison (ns/query, lower is better)"
        )?;
        let mut t = TextTable::new([
            "benchmark",
            "sequential",
            "uniform",
            "learned",
            "lrn/uni",
            "lrn/seq",
        ]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                format!("{:.0}", r.sequential_ns),
                format!("{:.0}", r.uniform_ns),
                format!("{:.0}", r.learned_ns),
                format!("{:.2}x", r.uniform_ns / r.learned_ns),
                format!("{:.2}x", r.sequential_ns / r.learned_ns),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "geomean: learned {:.2}x over uniform (paper 1.43x), {:.2}x over sequential (paper 7.57x)",
            self.learned_over_uniform, self.learned_over_sequential
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_holds() {
        let r = run(Window {
            queries: 2,
            max_tiles: 16,
        });
        assert_eq!(r.rows.len(), 4);
        assert!(
            r.learned_over_uniform > 1.1 && r.learned_over_uniform < 2.0,
            "learned/uniform {}",
            r.learned_over_uniform
        );
        assert!(
            r.learned_over_sequential > 4.5 && r.learned_over_sequential < 11.0,
            "learned/sequential {}",
            r.learned_over_sequential
        );
    }
}
