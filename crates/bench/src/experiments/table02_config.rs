//! Table 2 — the ECSSD configuration.

use ecssd_core::EcssdConfig;
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// The Table 2 result: the configuration actually used by the harness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// The configuration.
    pub config: EcssdConfig,
}

/// Loads the paper configuration.
pub fn run() -> Report {
    Report {
        config: EcssdConfig::paper_default(),
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.config;
        writeln!(f, "Table 2 — ECSSD configuration")?;
        let mut t = TextTable::new(["parameter", "value", "paper"]);
        let g = c.ssd.geometry;
        t.row([
            "flash capacity".to_string(),
            format!("{} TiB", g.capacity_bytes() >> 40),
            "4 TB".to_string(),
        ]);
        t.row([
            "flash channels".to_string(),
            g.channels.to_string(),
            "8".into(),
        ]);
        t.row([
            "page size".to_string(),
            format!("{} B", g.page_bytes),
            "4 KB".into(),
        ]);
        t.row([
            "DRAM".to_string(),
            format!(
                "{} GiB @ {:.1} GB/s",
                c.ssd.dram_bytes >> 30,
                c.ssd.dram_gbps
            ),
            "16 GB".into(),
        ]);
        t.row([
            "data buffer".to_string(),
            format!("{} MiB", c.ssd.buffer_bytes >> 20),
            "4 MB".into(),
        ]);
        t.row([
            "FP32 MAC lanes".to_string(),
            c.accelerator.fp32_lanes.to_string(),
            "64".into(),
        ]);
        t.row([
            "INT4 MAC lanes".to_string(),
            c.accelerator.int4_lanes.to_string(),
            "256".into(),
        ]);
        t.row([
            "clock".to_string(),
            format!("{} MHz", (c.accelerator.clock_ghz * 1000.0) as u64),
            "400 MHz".into(),
        ]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table2_matches() {
        let r = super::run();
        assert_eq!(r.config.ssd.geometry.channels, 8);
        assert_eq!(r.config.ssd.geometry.capacity_bytes() >> 40, 4);
    }
}
