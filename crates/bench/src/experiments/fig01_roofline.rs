//! Fig. 1: roofline analysis of ECSSD vs the in-storage-computing baseline.

use ecssd_core::roofline::{paper_points, RooflinePoint};
use ecssd_core::AcceleratorConfig;
use serde::Serialize;

use crate::table::TextTable;

/// The Fig. 1 result: the three design points.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Report {
    /// Points A (baseline), B (alignment-free MAC), C (full design).
    pub points: Vec<RooflinePoint>,
    /// Operational intensity of candidate-only classification, FLOP/byte.
    pub intensity: f64,
}

/// Computes the roofline points for the paper accelerator.
pub fn run() -> Report {
    let accel = AcceleratorConfig::paper_default();
    let points = paper_points(&accel, 8).to_vec();
    Report {
        intensity: points[0].intensity,
        points,
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 1 — roofline points at intensity {:.1} FLOP/byte",
            self.intensity
        )?;
        let mut t = TextTable::new(["point", "GFLOPS", "regime"]);
        for p in &self.points {
            let regime = match p.label {
                "A" => "compute-bound (naive MAC ceiling)",
                "B" => "memory-bound (bandwidth under-utilized)",
                _ => "near ridge (balanced)",
            };
            t.row([
                p.label.to_string(),
                format!("{:.1}", p.gflops),
                regime.into(),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn points_are_ordered() {
        let r = super::run();
        assert!(r.points[0].gflops < r.points[1].gflops);
        assert!(r.points[1].gflops < r.points[2].gflops);
    }
}
