//! Fig. 9: normalized area/power of the naive, SK Hynix and alignment-free
//! FP MAC circuits at iso-performance (50 GFLOPS).

use ecssd_float::{MacCircuit, MacCircuitModel};
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// One MAC organization's normalized cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacRow {
    /// Circuit label.
    pub circuit: String,
    /// Area in mm² for 50 GFLOPS.
    pub area_mm2: f64,
    /// Power in mW for 50 GFLOPS.
    pub power_mw: f64,
    /// Area normalized to the alignment-free circuit.
    pub area_ratio: f64,
    /// Power normalized to the alignment-free circuit.
    pub power_ratio: f64,
    /// Paper's reported (area, power) ratios.
    pub paper_ratios: (f64, f64),
}

/// The Fig. 9 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Rows in plot order: naive, SK Hynix, alignment-free.
    pub rows: Vec<MacRow>,
}

/// Computes the iso-performance comparison.
pub fn run() -> Report {
    let model = MacCircuitModel::new();
    let af = model.fp_engine_for_gflops(MacCircuit::AlignmentFree, 50.0);
    let rows = MacCircuit::ALL
        .iter()
        .map(|&c| {
            let e = model.fp_engine_for_gflops(c, 50.0);
            let paper_ratios = match c {
                MacCircuit::Naive => (1.73, 1.53),
                MacCircuit::SkHynix => (1.38, 1.19),
                MacCircuit::AlignmentFree => (1.0, 1.0),
            };
            MacRow {
                circuit: c.label().to_string(),
                area_mm2: e.area_mm2(),
                power_mw: e.power_mw(),
                area_ratio: e.area_um2 / af.area_um2,
                power_ratio: e.power_uw / af.power_uw,
                paper_ratios,
            }
        })
        .collect();
    Report { rows }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 9 — FP MAC circuits at iso-performance (50 GFLOPS)")?;
        let mut t = TextTable::new([
            "circuit",
            "area mm2",
            "power mW",
            "area ratio",
            "power ratio",
            "paper (area, power)",
        ]);
        for r in &self.rows {
            t.row([
                r.circuit.clone(),
                format!("{:.3}", r.area_mm2),
                format!("{:.1}", r.power_mw),
                format!("{:.2}x", r.area_ratio),
                format!("{:.2}x", r.power_ratio),
                format!("{:.2}x, {:.2}x", r.paper_ratios.0, r.paper_ratios.1),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratios_track_the_paper() {
        let r = super::run();
        for row in &r.rows {
            assert!(
                (row.area_ratio - row.paper_ratios.0).abs() < 0.05,
                "{row:?}"
            );
            assert!(
                (row.power_ratio - row.paper_ratios.1).abs() < 0.05,
                "{row:?}"
            );
        }
    }
}
