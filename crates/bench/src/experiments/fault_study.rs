//! Fault-injection study: UECC rate × degradation policy against
//! throughput and recall, plus a killed-die comparison of the learned and
//! sequential layouts.
//!
//! The study answers the robustness question behind the §5.2 claim ("the
//! final data access time is decided by the busiest flash channel"): when
//! pages go uncorrectable or a die dies, which [`DegradationPolicy`] keeps
//! the service answering, at what throughput cost, and with how much
//! recall loss? See `docs/faults.md` for the fault model.

use std::collections::HashSet;

use ecssd_core::{DegradationPolicy, EcssdConfig, EcssdMachine, MachineVariant, RunReport};
use ecssd_layout::InterleavingStrategy;
use ecssd_ssd::FaultPlan;
use ecssd_workloads::{Benchmark, CandidateSource, SampledWorkload, TraceConfig};
use serde::Serialize;

use crate::experiments::common::Window;
use crate::table::TextTable;

/// Benchmark under fault injection (page-bound: faults hit the critical
/// path instead of hiding behind compute).
const BENCH: &str = "Transformer-W268K";

/// Seed of every fault plan in the study (runs replay exactly).
const FAULT_SEED: u64 = 0xfa57;

/// One (UECC rate, policy) sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Per-attempt UECC probability.
    pub uecc_rate: f64,
    /// Policy label.
    pub policy: String,
    /// ns per query batch.
    pub ns_per_query: f64,
    /// Slowdown vs the fault-free run (≥ 1.0; the throughput penalty).
    pub slowdown: f64,
    /// Fraction of queries whose top-1 candidate row survived.
    pub top1_recall: f64,
    /// Fraction of top-5 candidate rows (over all queries) that survived.
    pub top5_recall: f64,
    /// Fraction of all candidate rows delivered to classification.
    pub candidate_recall: f64,
    /// UECC events observed at the flash layer.
    pub uecc_events: u64,
    /// Pages recovered by re-reading.
    pub retried_reads: u64,
    /// Rows rebuilt from RAID-5 stripe peers.
    pub reconstructed_rows: u64,
    /// Rows dropped by the `Skip` policy.
    pub skipped_rows: u64,
    /// Rows no policy could save.
    pub unrecovered_rows: u64,
}

/// One interleaving strategy under a killed die.
#[derive(Debug, Clone, Serialize)]
pub struct DiePoint {
    /// Interleaving label.
    pub interleaving: String,
    /// FP-traffic channel utilization with no faults.
    pub util_fault_free: f64,
    /// Same metric with one die killed (channel 0, die 1).
    pub util_dead_die: f64,
    /// `util_dead_die / util_fault_free` — the recovery ratio.
    pub recovery: f64,
    /// ns per query batch with the dead die.
    pub ns_per_query: f64,
    /// Candidate rows dropped (Skip policy) during the faulted run.
    pub dropped_rows: u64,
}

/// The full study result.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Simulation window used.
    pub window: Window,
    /// Fault-free ns per query batch (the slowdown denominator).
    pub baseline_ns: f64,
    /// UECC-rate × policy sweep.
    pub sweep: Vec<SweepPoint>,
    /// Killed-die comparison (learned vs sequential interleaving).
    pub die_study: Vec<DiePoint>,
    /// Whether two identical faulted runs produced identical
    /// `HealthReport`s and end-to-end latencies.
    pub deterministic: bool,
}

fn machine(variant: MachineVariant) -> EcssdMachine {
    let bench = Benchmark::by_abbrev(BENCH).expect("known benchmark");
    let workload = SampledWorkload::new(bench, TraceConfig::paper_default());
    EcssdMachine::new(EcssdConfig::paper_default(), variant, Box::new(workload))
        .expect("screener fits DRAM")
}

fn faulted_run(
    variant: MachineVariant,
    plan: FaultPlan,
    window: Window,
) -> (RunReport, Vec<(usize, usize, u64)>) {
    let mut m = machine(variant);
    m.set_fault_plan(plan);
    let r = m
        .run_window(window.queries, window.max_tiles)
        .expect("degrading policies do not abort");
    let dropped = m.skipped().to_vec();
    (r, dropped)
}

/// Top-k recall over the window: for each query, the k candidate rows with
/// the highest true hotness weight (the proxy for classification score)
/// must reach the FP32 stage. `lost` holds the dropped `(query, row)`
/// pairs.
fn recall_at_k(window: Window, lost: &HashSet<(usize, u64)>, k: usize) -> f64 {
    let bench = Benchmark::by_abbrev(BENCH).expect("known benchmark");
    let trace = TraceConfig::paper_default();
    let mut w = SampledWorkload::new(bench, trace);
    let tiles = w.num_tiles().min(window.max_tiles);
    let mut hits = 0usize;
    let mut total = 0usize;
    for q in 0..window.queries {
        let mut rows: Vec<u64> = (0..tiles).flat_map(|t| w.candidates(q, t)).collect();
        rows.sort_by(|a, b| {
            trace
                .hotness
                .weight(*b)
                .partial_cmp(&trace.hotness.weight(*a))
                .expect("finite weights")
                .then(a.cmp(b))
        });
        for &row in rows.iter().take(k) {
            total += 1;
            if !lost.contains(&(q, row)) {
                hits += 1;
            }
        }
    }
    hits as f64 / total.max(1) as f64
}

fn sweep_point(
    rate: f64,
    policy: DegradationPolicy,
    label: &str,
    baseline_ns: f64,
    window: Window,
) -> SweepPoint {
    let variant = MachineVariant::paper_ecssd().with_degradation(policy);
    let plan = FaultPlan::with_seed(FAULT_SEED).with_uecc(rate);
    let (r, dropped) = faulted_run(variant, plan, window);
    let lost: HashSet<(usize, u64)> = dropped.iter().map(|&(q, _, row)| (q, row)).collect();
    let lost_rows = r.health.skipped_rows + r.health.unrecovered_rows;
    SweepPoint {
        uecc_rate: rate,
        policy: label.to_string(),
        ns_per_query: r.ns_per_query(),
        slowdown: r.ns_per_query() / baseline_ns,
        top1_recall: recall_at_k(window, &lost, 1),
        top5_recall: recall_at_k(window, &lost, 5),
        candidate_recall: 1.0 - lost_rows as f64 / r.candidate_rows.max(1) as f64,
        uecc_events: r.health.uecc_events,
        retried_reads: r.health.retried_reads,
        reconstructed_rows: r.health.reconstructed_rows,
        skipped_rows: r.health.skipped_rows,
        unrecovered_rows: r.health.unrecovered_rows,
    }
}

fn die_point(label: &str, interleaving: InterleavingStrategy, window: Window) -> DiePoint {
    let variant = MachineVariant {
        interleaving,
        ..MachineVariant::paper_ecssd()
    }
    .with_degradation(DegradationPolicy::Skip);
    let clean = machine(variant)
        .run_window(window.queries, window.max_tiles)
        .expect("fault-free run");
    // Channel 0 so the sequential layout (whose first tiles all live
    // there) is exposed to the failure as much as the learned one.
    let plan = FaultPlan::with_seed(FAULT_SEED).with_dead_die(0, 1);
    let (dead, dropped) = faulted_run(variant, plan, window);
    DiePoint {
        interleaving: label.to_string(),
        util_fault_free: clean.fp_channel_utilization,
        util_dead_die: dead.fp_channel_utilization,
        recovery: dead.fp_channel_utilization / clean.fp_channel_utilization,
        ns_per_query: dead.ns_per_query(),
        dropped_rows: dropped.len() as u64,
    }
}

/// Runs the study over `window`.
pub fn run(window: Window) -> Report {
    let baseline = machine(MachineVariant::paper_ecssd())
        .run_window(window.queries, window.max_tiles)
        .expect("fault-free run");
    let baseline_ns = baseline.ns_per_query();

    let policies: [(DegradationPolicy, &str); 3] = [
        (DegradationPolicy::Retry { max: 2 }, "Retry{2}"),
        (DegradationPolicy::Reconstruct, "Reconstruct"),
        (DegradationPolicy::Skip, "Skip"),
    ];
    let mut sweep = Vec::new();
    for &rate in &[1e-5, 1e-4, 1e-3] {
        for &(policy, label) in &policies {
            sweep.push(sweep_point(rate, policy, label, baseline_ns, window));
        }
    }

    let die_study = vec![
        die_point(
            "Learned",
            InterleavingStrategy::Learned(Default::default()),
            window,
        ),
        die_point("Sequential", InterleavingStrategy::Sequential, window),
    ];

    // Determinism: the same plan seed must replay byte-identically.
    let replay = || {
        faulted_run(
            MachineVariant::paper_ecssd().with_degradation(DegradationPolicy::Retry { max: 2 }),
            FaultPlan::with_seed(FAULT_SEED)
                .with_uecc(1e-3)
                .with_retry_storms(1e-3),
            window,
        )
    };
    let (a, da) = replay();
    let (b, db) = replay();
    let deterministic = a.health == b.health && a.makespan == b.makespan && da == db;

    Report {
        window,
        baseline_ns,
        sweep,
        die_study,
        deterministic,
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&render(self))
    }
}

/// Renders the report.
pub fn render(r: &Report) -> String {
    let mut out = format!(
        "Fault-injection study ({BENCH}, {} queries x {} tiles)\n\
         fault-free baseline: {:.0} ns/query\n\n\
         UECC rate x degradation policy:\n",
        r.window.queries, r.window.max_tiles, r.baseline_ns
    );
    let mut t = TextTable::new([
        "UECC",
        "policy",
        "ns/query",
        "slowdown",
        "top-1",
        "top-5",
        "cand recall",
        "uecc",
        "retried",
        "rebuilt",
        "skipped",
        "lost",
    ]);
    for p in &r.sweep {
        t.row([
            format!("{:.0e}", p.uecc_rate),
            p.policy.clone(),
            format!("{:.0}", p.ns_per_query),
            format!("{:.3}x", p.slowdown),
            format!("{:.3}", p.top1_recall),
            format!("{:.3}", p.top5_recall),
            format!("{:.5}", p.candidate_recall),
            p.uecc_events.to_string(),
            p.retried_reads.to_string(),
            p.reconstructed_rows.to_string(),
            p.skipped_rows.to_string(),
            p.unrecovered_rows.to_string(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nKilled die (channel 0, die 1), Skip policy:\n");
    let mut t = TextTable::new([
        "interleaving",
        "FP util (healthy)",
        "FP util (dead die)",
        "recovery",
        "ns/query",
        "dropped rows",
    ]);
    for p in &r.die_study {
        t.row([
            p.interleaving.clone(),
            format!("{:.1}%", p.util_fault_free * 100.0),
            format!("{:.1}%", p.util_dead_die * 100.0),
            format!("{:.2}", p.recovery),
            format!("{:.0}", p.ns_per_query),
            p.dropped_rows.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nsame-seed replay: {}\n",
        if r.deterministic {
            "byte-identical (HealthReport + latency)"
        } else {
            "MISMATCH"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Window {
        Window {
            queries: 2,
            max_tiles: 12,
        }
    }

    #[test]
    fn degrading_policies_never_abort_and_replay_exactly() {
        let r = run(small());
        assert!(r.deterministic);
        for p in &r.sweep {
            assert!(p.slowdown >= 1.0 - 1e-9, "{}: {}", p.policy, p.slowdown);
            assert!(p.candidate_recall > 0.9 && p.candidate_recall <= 1.0);
        }
    }

    #[test]
    fn retry_and_reconstruct_lose_nothing_at_moderate_rates() {
        let w = small();
        let base = machine(MachineVariant::paper_ecssd())
            .run_window(w.queries, w.max_tiles)
            .expect("fault-free run")
            .ns_per_query();
        for policy in [
            DegradationPolicy::Retry { max: 2 },
            DegradationPolicy::Reconstruct,
        ] {
            let p = sweep_point(1e-4, policy, "p", base, w);
            assert_eq!(p.unrecovered_rows, 0);
            assert_eq!(p.skipped_rows, 0);
            assert_eq!(p.top1_recall, 1.0);
            assert_eq!(p.top5_recall, 1.0);
        }
    }

    #[test]
    fn learned_interleaving_recovers_from_a_killed_die() {
        let d = die_point(
            "Learned",
            InterleavingStrategy::Learned(Default::default()),
            small(),
        );
        assert!(d.recovery >= 0.8, "recovery {}", d.recovery);
    }
}
