//! Regenerates Fig. 12 (storing-strategy comparison).
use ecssd_bench::experiments::common::Window;
fn main() {
    println!(
        "{}",
        ecssd_bench::fig12_interleaving::run(Window::standard())
    );
}
