//! Regenerates Fig. 11 (channel access patterns).
fn main() {
    println!("{}", ecssd_bench::fig11_access::run());
}
