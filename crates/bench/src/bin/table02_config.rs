//! Prints Table 2 (ECSSD configuration).
fn main() {
    println!("{}", ecssd_bench::table02_config::run());
}
