//! Regenerates the Section 7.3 ENMC comparison.
fn main() {
    println!("{}", ecssd_bench::sec73_enmc::run());
}
