//! Regenerates Fig. 10 (heterogeneous vs homogeneous layout).
use ecssd_bench::experiments::common::Window;
fn main() {
    println!("{}", ecssd_bench::fig10_hetero::run(Window::standard()));
}
