//! Regenerates the Section 7.2 GPU comparison.
fn main() {
    println!("{}", ecssd_bench::sec72_gpu::run());
}
