//! Online model-update interference study.
//!
//! Sweeps the update rate on a sharded [`ServeEngine`] with span tracing
//! enabled: each sweep point interleaves query batches with staged
//! [`UpdateBatch`]es and epoch hot-swaps, then reports
//!
//! * the per-query simulated read-latency p99 and its inflation over the
//!   update-free baseline (the program, GC, and parity traffic shares the
//!   flash timing model with the query reads),
//! * recall of the served top-k against a brute-force classification of
//!   the final (post-update) weight matrix on the host,
//! * program/GC traffic: `FlashProgram` busy time from the traced stage
//!   breakdown plus the GC relocation/erase counts from the update
//!   reports.
//!
//! The study fails (exit 1) if any sweep point observes a mixed-version
//! batch — the hot-swap must stay atomic at every update rate — or if a
//! nonzero rate shows no attributed program traffic.

use std::time::Duration;

use ecssd_core::prelude::*;
use ecssd_core::{sort_scores, UpdateBatch};
use ecssd_serve::{ServeEngine, ServePolicy};
use ecssd_trace::Stage;

const ROWS: usize = 1_200;
const COLS: usize = 64;
const SHARDS: usize = 2;
const K: usize = 5;
/// Query-batch rounds per sweep point; updates interleave between rounds.
const ROUNDS: usize = 6;
/// Queries per batch round.
const BATCH: usize = 8;
/// Category rows replaced per update batch.
const ROWS_PER_BATCH: usize = 4;
/// Evaluation queries for the recall measurement.
const EVAL_QUERIES: usize = 16;

fn query(phase: f32) -> Vec<f32> {
    (0..COLS)
        .map(|i| ((i as f32) * 0.13 + phase).sin())
        .collect()
}

/// Replacement rows correlate with the query mix so updates move top-ks.
fn fresh_row(seed: f32) -> Vec<f32> {
    (0..COLS)
        .map(|i| ((i as f32) * 0.13 + seed).sin() * 1.5)
        .collect()
}

/// Distinct target rows for update batch `serial` (stride 293 is coprime
/// with `ROWS`, so the per-batch targets never collide).
fn batch_targets(serial: usize) -> Vec<usize> {
    (0..ROWS_PER_BATCH)
        .map(|j| (serial * 101 + j * 293) % ROWS)
        .collect()
}

struct SweepPoint {
    rate: usize,
    update_batches: u64,
    p99_us: f64,
    recall: f64,
    program_ns: u64,
    pages_programmed: u64,
    gc_moved: u64,
    gc_erased: u64,
    mixed_version_batches: u64,
}

/// Brute-force top-k categories of `q` against the full FP32 matrix.
fn brute_topk(weights: &DenseMatrix, q: &[f32], k: usize) -> Vec<usize> {
    let mut scores: Vec<Score> = (0..weights.rows())
        .map(|r| Score {
            category: r,
            value: weights
                .row(r)
                .iter()
                .zip(q)
                .map(|(w, x)| w * x)
                .sum::<f32>(),
        })
        .collect();
    sort_scores(&mut scores);
    scores.truncate(k);
    scores.into_iter().map(|s| s.category).collect()
}

/// Mean top-k overlap of the served answers with the brute-force
/// reference over the evaluation queries.
fn measure_recall(engine: &mut ServeEngine, weights: &DenseMatrix) -> f64 {
    let inputs: Vec<Vec<f32>> = (0..EVAL_QUERIES)
        .map(|i| query(i as f32 * 0.29 + 0.11))
        .collect();
    let answers = engine
        .classify_batch(&inputs, K)
        .expect("fault-free evaluation");
    let mut hit = 0usize;
    for (q, served) in inputs.iter().zip(&answers) {
        let truth = brute_topk(weights, q, K);
        hit += served
            .iter()
            .filter(|s| truth.contains(&s.category))
            .count();
    }
    hit as f64 / (EVAL_QUERIES * K) as f64
}

fn run_point(rate: usize) -> SweepPoint {
    let config = EcssdConfig::tiny_builder()
        .hot_cache_bytes(1 << 20)
        .build()
        .expect("valid study configuration");
    let policy = ServePolicy {
        max_batch: BATCH,
        max_wait: Duration::from_micros(500),
    };
    let mut engine = ServeEngine::builder(config)
        .shards(SHARDS)
        .policy(policy)
        .tracing(true)
        .build()
        .expect("engine spawns");
    // Random rows are near-ties the INT4 screener cannot rank; real
    // classifiers separate their top categories, so plant correlated
    // anchor rows across the phase range of the query mix.
    let mut weights = DenseMatrix::random(ROWS, COLS, 0xec55d);
    for (i, r) in (0..ROWS).step_by(31).enumerate() {
        let anchor = fresh_row(i as f32 * 0.23);
        weights.row_mut(r).copy_from_slice(&anchor);
    }
    engine
        .deploy(&weights)
        .expect("deploy fits the tiny device");

    let mut serial = 0usize;
    let (mut pages, mut gc_moved, mut gc_erased, mut batches) = (0u64, 0u64, 0u64, 0u64);
    for round in 0..ROUNDS {
        let inputs: Vec<Vec<f32>> = (0..BATCH)
            .map(|q| query((round * BATCH + q) as f32 * 0.37))
            .collect();
        engine.classify_batch(&inputs, K).expect("serving round");
        for _ in 0..rate {
            let targets = batch_targets(serial);
            let mut batch = UpdateBatch::new(COLS);
            for (j, &r) in targets.iter().enumerate() {
                let row = fresh_row(serial as f32 * 0.17 + j as f32 * 0.05);
                batch = batch.replace(r, row.clone()).expect("well-formed batch");
                weights.row_mut(r).copy_from_slice(&row);
            }
            engine.stage_update(&batch).expect("stage under load");
            let report = engine.commit_update().expect("hot-swap under load");
            pages += report.pages_programmed + report.parity.parity_programs;
            gc_moved += report.gc.moved_pages;
            gc_erased += report.gc.erased_blocks;
            batches += 1;
            serial += 1;
        }
    }
    let recall = measure_recall(&mut engine, &weights);
    let report = engine.report();
    let program_ns = report
        .breakdown
        .as_ref()
        .and_then(|b| b.entries.iter().find(|e| e.stage == Stage::FlashProgram))
        .map(|e| e.busy_ns)
        .unwrap_or(0);
    SweepPoint {
        rate,
        update_batches: batches,
        p99_us: report.p99_us,
        recall,
        program_ns,
        pages_programmed: pages,
        gc_moved,
        gc_erased,
        mixed_version_batches: report.mixed_version_batches,
    }
}

/// Sustained-overwrite churn on a single functional device: enough update
/// traffic to exhaust the tiny geometry's free pages, so the FTL's
/// garbage collector must relocate and erase — the GC side of the
/// program/GC interference, surfaced through the device health counters
/// (and charged on the same flash timelines the queries read from).
fn gc_churn() -> bool {
    let mut dev = Ecssd::new(EcssdConfig::tiny());
    dev.enable();
    let weights = DenseMatrix::random(ROWS, COLS, 0x6c);
    dev.weight_deploy(&weights)
        .expect("deploy fits the tiny device");
    for serial in 0..400 {
        let mut batch = UpdateBatch::new(COLS);
        for (j, &r) in batch_targets(serial).iter().enumerate() {
            let row = fresh_row(serial as f32 * 0.07 + j as f32 * 0.31);
            batch = batch.replace(r, row).expect("well-formed batch");
        }
        dev.stage_update(&batch).expect("stage under churn");
        dev.commit_update().expect("commit under churn");
    }
    let health = dev.health_report();
    println!(
        "churn: update_programs={} gc_moved_pages={} gc_erased_blocks={} \
         wear_max_erases={} wear_mean_erases={:.2}",
        health.update_programs,
        health.gc_moved_pages,
        health.gc_erased_blocks,
        health.wear_max_erases,
        health.wear_mean_erases
    );
    if !dev.device_mut().ftl().mapping_is_consistent() {
        eprintln!("error: churn left the FTL mapping inconsistent");
        return false;
    }
    if health.gc_moved_pages == 0 || health.gc_erased_blocks == 0 {
        eprintln!("error: sustained churn never triggered garbage collection");
        return false;
    }
    true
}

fn main() {
    println!(
        "== update-rate sweep: {SHARDS}-shard serving, {ROWS}x{COLS}, \
         {ROUNDS} rounds x {BATCH} queries, {ROWS_PER_BATCH} rows/update =="
    );
    let rates = [0usize, 1, 2, 4, 8];
    let points: Vec<SweepPoint> = rates.iter().map(|&r| run_point(r)).collect();
    let baseline_p99 = points[0].p99_us.max(f64::MIN_POSITIVE);

    let mut failed = false;
    for p in &points {
        let inflation = p.p99_us / baseline_p99;
        println!(
            "rate={} update_batches={} p99_us={:.2} p99_inflation={:.3} recall={:.3} \
             program_ns={} pages_programmed={} gc_moved={} gc_erased={} \
             mixed_version_batches={}",
            p.rate,
            p.update_batches,
            p.p99_us,
            inflation,
            p.recall,
            p.program_ns,
            p.pages_programmed,
            p.gc_moved,
            p.gc_erased,
            p.mixed_version_batches
        );
        if p.mixed_version_batches != 0 {
            eprintln!(
                "error: rate {}: {} mixed-version batches — the epoch \
                 hot-swap must be atomic",
                p.rate, p.mixed_version_batches
            );
            failed = true;
        }
        if p.rate > 0 && (p.program_ns == 0 || p.pages_programmed == 0) {
            eprintln!(
                "error: rate {}: update traffic missing from the stage \
                 breakdown (program_ns={}, pages={})",
                p.rate, p.program_ns, p.pages_programmed
            );
            failed = true;
        }
        if p.recall < 0.8 {
            eprintln!(
                "error: rate {}: recall {:.3} collapsed vs brute force on \
                 the final weights",
                p.rate, p.recall
            );
            failed = true;
        }
    }
    let max_rate = points.last().expect("non-empty sweep");
    if max_rate.p99_us < baseline_p99 {
        eprintln!(
            "error: p99 at the highest update rate ({:.2} us) fell below \
             the update-free baseline ({:.2} us)",
            max_rate.p99_us, baseline_p99
        );
        failed = true;
    }
    if !gc_churn() {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "update study passed: {} sweep points, zero mixed-version batches, \
         program traffic attributed at every nonzero rate",
        points.len()
    );
}
