//! Regenerates Fig. 13 (end-to-end baseline comparison).
use ecssd_bench::experiments::common::Window;
fn main() {
    println!("{}", ecssd_bench::fig13_end_to_end::run(Window::standard()));
}
