//! Prints Table 4 (accelerator area/power).
fn main() {
    println!("{}", ecssd_bench::table04_area_power::run());
}
