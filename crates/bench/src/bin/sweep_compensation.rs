//! Runs the compensation-width design-space sweep (§4.2).
fn main() {
    println!("{}", ecssd_bench::sweep_compensation::run());
}
