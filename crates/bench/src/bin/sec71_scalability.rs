//! Regenerates the Section 7.1 scalability analysis.
fn main() {
    println!("{}", ecssd_bench::sec71_scalability::run());
}
