//! Regenerates the Section 4.2 measurements.
fn main() {
    println!("{}", ecssd_bench::sec42_alignment_free::run());
}
