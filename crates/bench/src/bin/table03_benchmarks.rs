//! Prints Table 3 (benchmark suite).
fn main() {
    println!("{}", ecssd_bench::table03_benchmarks::run());
}
