//! Runs the measured-energy study.
use ecssd_bench::experiments::common::Window;
fn main() {
    println!("{}", ecssd_bench::energy_report::run(Window::standard()));
}
