//! `pipeline_trace` — ASCII Gantt view of the ECSSD tile pipeline.
//!
//! ```text
//! cargo run --release -p ecssd-bench --bin pipeline_trace -- [tiles] [benchmark]
//! ```
//!
//! Shows, per tile, the screening / fetch / classify intervals on a common
//! time axis — the §4.5 overlap made visible — plus the per-channel bus
//! occupancy from the flash trace.

use ecssd_core::{EcssdConfig, EcssdMachine, MachineVariant};
use ecssd_workloads::{Benchmark, SampledWorkload, TraceConfig};

const WIDTH: usize = 96;

fn bar(start: u64, end: u64, t0: u64, t1: u64, ch: char) -> String {
    let span = (t1 - t0).max(1) as f64;
    let a = (((start - t0) as f64 / span) * WIDTH as f64) as usize;
    let b = ((((end - t0) as f64 / span) * WIDTH as f64) as usize).min(WIDTH);
    let mut s = " ".repeat(WIDTH);
    if b > a {
        s.replace_range(a..b, &ch.to_string().repeat(b - a));
    }
    s
}

fn main() {
    let mut args = std::env::args().skip(1);
    let tiles: usize = args
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
        .clamp(2, 24);
    let bench_name = args.next().unwrap_or_else(|| "Transformer-W268K".into());
    let Some(bench) = Benchmark::by_abbrev(&bench_name) else {
        eprintln!("unknown benchmark {bench_name:?}");
        std::process::exit(2);
    };

    let workload = SampledWorkload::new(bench, TraceConfig::paper_default());
    let mut machine = EcssdMachine::new(
        EcssdConfig::paper_default(),
        MachineVariant::paper_ecssd(),
        Box::new(workload),
    )
    .expect("screener fits DRAM");
    machine.enable_tile_timings();
    let report = machine.run_window(1, tiles).expect("fault-free run");
    let timings = machine.tile_timings().to_vec();

    let t0 = 0u64;
    let t1 = report.makespan.as_ns();
    println!(
        "{} — {} tiles, one query batch, makespan {} (s=screen window end, f=fetch, c=classify)\n",
        bench.abbrev, tiles, report.makespan
    );
    println!("tile  {:-^WIDTH$}", " time ");
    for t in &timings {
        // Screening interval is approximated as ending at screen_done; the
        // fetch and classify intervals are exact.
        let screen_start = t
            .screen_done
            .as_ns()
            .saturating_sub(t.screen_done.as_ns() / (t.tile + 2) as u64);
        let mut line = bar(screen_start, t.screen_done.as_ns(), t0, t1, 's');
        let f = bar(t.screen_done.as_ns(), t.fetch_done.as_ns(), t0, t1, 'f');
        let c = bar(t.fetch_done.as_ns(), t.fp_done.as_ns(), t0, t1, 'c');
        let merged: String = line
            .chars()
            .zip(f.chars())
            .zip(c.chars())
            .map(|((a, b), c)| {
                if c != ' ' {
                    c
                } else if b != ' ' {
                    b
                } else {
                    a
                }
            })
            .collect();
        line = merged;
        println!("{:>4}  {line}", t.tile);
    }
    println!(
        "\nFP channel utilization {:.1}%, candidates {} rows",
        report.fp_channel_utilization * 100.0,
        report.candidate_rows
    );
}
