//! Serving-engine study: sustained throughput, tail latency, and cache
//! effectiveness across batch-formation policy × shard count × hot-cache
//! capacity.
//!
//! Each point deploys the same classification layer into a fresh
//! [`ServeEngine`] and pushes the same query stream through the submission
//! queue. Throughput is measured in simulated device time (queries per
//! second of the slowest shard — shards run in parallel); latency
//! percentiles are host wall-clock.

use std::time::Duration;

use ecssd_bench::table::TextTable;
use ecssd_core::prelude::*;
use ecssd_serve::{ServeEngine, ServePolicy};

const CATEGORIES: usize = 1200;
const HIDDEN: usize = 64;
const QUERIES: usize = 48;
const TOP_K: usize = 5;

fn query_stream() -> Vec<Vec<f32>> {
    // A skewed stream: a few phases repeat, so hot candidate rows recur
    // across batches and a sized cache can prove itself.
    (0..QUERIES)
        .map(|q| {
            let phase = (q % 6) as f32 * 0.37;
            (0..HIDDEN)
                .map(|i| ((i as f32) * 0.11 + phase).sin())
                .collect()
        })
        .collect()
}

struct Point {
    shards: usize,
    max_batch: usize,
    cache_bytes: u64,
    report: ecssd_serve::ServeReport,
}

fn run_point(shards: usize, max_batch: usize, cache_bytes: u64) -> Point {
    let config = EcssdConfig::tiny_builder()
        .hot_cache_bytes(cache_bytes)
        .build()
        .expect("valid study configuration");
    let policy = ServePolicy {
        max_batch,
        max_wait: Duration::from_micros(500),
    };
    let mut engine = ServeEngine::builder(config)
        .shards(shards)
        .policy(policy)
        .build()
        .expect("engine spawns");
    let weights = DenseMatrix::random(CATEGORIES, HIDDEN, 0xec55d);
    engine
        .deploy(&weights)
        .expect("deploy fits the tiny device");
    for chunk in query_stream().chunks(max_batch.max(1)) {
        engine
            .classify_batch(chunk, TOP_K)
            .expect("fault-free serving");
    }
    Point {
        shards,
        max_batch,
        cache_bytes,
        report: engine.report(),
    }
}

fn main() {
    let shard_axis = [1usize, 2, 4];
    let batch_axis = [1usize, 4, 8, 16];
    let cache_axis = [0u64, 1 << 20, 4 << 20];

    println!(
        "Serving study: {CATEGORIES}x{HIDDEN} layer, {QUERIES} queries, top-{TOP_K}\n\
         (sim q/s = queries per simulated second of the slowest shard)\n"
    );
    let mut table = TextTable::new([
        "shards",
        "batch",
        "cache",
        "sim q/s",
        "vs 1 shard",
        "p50 us",
        "p99 us",
        "min util",
        "hit rate",
    ]);
    for &cache_bytes in &cache_axis {
        for &max_batch in &batch_axis {
            let mut base_rate = 0.0f64;
            for &shards in &shard_axis {
                let p = run_point(shards, max_batch, cache_bytes);
                if shards == 1 {
                    base_rate = p.report.sim_queries_per_sec;
                }
                let min_util = p
                    .report
                    .shard_utilization
                    .iter()
                    .copied()
                    .fold(1.0f64, f64::min);
                table.row([
                    p.shards.to_string(),
                    p.max_batch.to_string(),
                    if p.cache_bytes == 0 {
                        "off".to_string()
                    } else {
                        format!("{}K", p.cache_bytes >> 10)
                    },
                    format!("{:.0}", p.report.sim_queries_per_sec),
                    format!("{:.2}x", p.report.sim_queries_per_sec / base_rate.max(1e-9)),
                    format!("{:.0}", p.report.p50_us),
                    format!("{:.0}", p.report.p99_us),
                    format!("{:.2}", min_util),
                    format!("{:.1}%", p.report.cache.hit_rate() * 100.0),
                ]);
            }
        }
    }
    print!("{}", table.render());

    // The headline claims, checked on the way out.
    let one = run_point(1, 8, 1 << 20);
    let four = run_point(4, 8, 1 << 20);
    let scaling = four.report.sim_queries_per_sec / one.report.sim_queries_per_sec;
    println!(
        "\n4-shard scaling at batch 8: {scaling:.2}x; cached hit rate {:.1}%",
        four.report.cache.hit_rate() * 100.0
    );
    if scaling < 2.0 || four.report.cache.hits == 0 {
        eprintln!(
            "error: serving targets missed (scaling {scaling:.2}x, hits {})",
            four.report.cache.hits
        );
        std::process::exit(1);
    }
}
