//! Runs the DESIGN.md §5 ablation studies.
use ecssd_bench::experiments::common::Window;
fn main() {
    println!("{}", ecssd_bench::ablations::run(Window::standard()));
}
