//! Workload-drift recovery study: the adaptive control plane vs a static
//! configuration.
//!
//! Two identical sharded [`ServeEngine`]s serve the same query stream over
//! the same planted weight matrix. The stream is phased: a compact hot set
//! (family A, ~80 planted rows) for the first third, then a mid-run
//! rotation onto a much wider hot set (family B, ~400 planted rows) whose
//! working set no longer fits the initially provisioned hot-row cache.
//!
//! * The **static** engine keeps its build-time knobs. Post-shift its
//!   cache thrashes: the windowed hit rate collapses and the simulated
//!   per-query latency inflates — and stays there.
//! * The **adaptive** engine runs a [`SloFeedbackControl`] tick on every
//!   window boundary. Its online hotness estimator sees the access
//!   histogram rotate, the drift detector fires (→ `Reinterleave` of the
//!   newly hot rows through the update path, committed on a batch
//!   boundary), the hit-rate floor grows the cache, and the p99 loop
//!   re-tunes the batch policy until the window latency returns toward
//!   the pre-shift level.
//!
//! The study fails (exit 1) unless the adaptive engine ends the run with
//! a clearly better windowed hit rate *and* latency than the static one,
//! at least one drift-triggered re-interleave was applied, and neither
//! engine ever observed a mixed-version batch.

use std::time::Duration;

use ecssd_control::{
    ControlAction, DriftConfig, EstimatorConfig, SloFeedbackConfig, SloFeedbackControl,
};
use ecssd_core::prelude::*;
use ecssd_screen::ThresholdPolicy;
use ecssd_serve::{ServeEngine, ServePolicy, ServeReport};

const ROWS: usize = 1_200;
const COLS: usize = 64;
const SHARDS: usize = 2;
const K: usize = 5;
/// Queries per window (one control-loop tick per window).
const BATCH: usize = 8;
const PHASE_A_WINDOWS: usize = 8;
const PHASE_B_WINDOWS: usize = 16;
/// Planted family-A rows (compact hot set, rows [0, 600)).
const HOT_A: usize = 80;
/// Planted family-B rows (wide hot set, rows [600, 1200)).
const HOT_B: usize = 400;
/// Build-time per-shard hot-row cache — sized for family A only.
const CACHE_START: u64 = 256 << 10;

/// Family A: low-frequency sinusoid; phase selects a neighborhood.
fn family_a(phase: f32, scale: f32) -> Vec<f32> {
    (0..COLS)
        .map(|i| ((i as f32) * 0.13 + phase).sin() * scale)
        .collect()
}

/// Family B: a different frequency, near-orthogonal to family A.
fn family_b(phase: f32, scale: f32) -> Vec<f32> {
    (0..COLS)
        .map(|i| ((i as f32) * 0.29 + phase).cos() * scale)
        .collect()
}

/// Random base matrix with both families planted: A compact in the low
/// half, B spread across the high half.
fn planted_weights() -> DenseMatrix {
    let mut weights = DenseMatrix::random(ROWS, COLS, 0xd21f7);
    for j in 0..HOT_A {
        let row = j * (600 / HOT_A);
        weights
            .row_mut(row)
            .copy_from_slice(&family_a(j as f32 * 0.15, 1.5));
    }
    for j in 0..HOT_B {
        let row = 600 + j * 600 / HOT_B;
        weights
            .row_mut(row)
            .copy_from_slice(&family_b(j as f32 * 0.03, 1.5));
    }
    weights
}

/// The window's query batch: family A before the shift, family B after,
/// with the phase sweeping so consecutive windows touch different slices
/// of the planted family.
fn window_queries(window: usize) -> Vec<Vec<f32>> {
    (0..BATCH)
        .map(|q| {
            let t = (window * BATCH + q) as f32;
            if window < PHASE_A_WINDOWS {
                family_a(t * 0.15, 1.0)
            } else {
                family_b(t * 0.61, 1.0)
            }
        })
        .collect()
}

fn controller() -> SloFeedbackControl {
    SloFeedbackControl::new(SloFeedbackConfig {
        p99_target_us: 3_000.0,
        over_streak: 2,
        under_streak: 4,
        batch_initial: BATCH,
        batch_max: BATCH,
        wait_initial_us: 500,
        hit_rate_floor: 0.65,
        min_window_lookups: 32,
        cache_step_bytes: 512 << 10,
        cache_max_bytes: 4 << 20,
        max_reinterleave_rows: 512,
        estimator: EstimatorConfig {
            group_rows: 128,
            alpha: 0.5,
            ..EstimatorConfig::default()
        },
        drift: DriftConfig {
            threshold: 0.4,
            persistence: 2,
            cooldown: 6,
        },
        ..SloFeedbackConfig::default()
    })
}

fn build_engine(adaptive: bool) -> ServeEngine {
    let config = EcssdConfig::tiny_builder()
        .hot_cache_bytes(CACHE_START)
        .build()
        .expect("valid study configuration");
    let mut builder = ServeEngine::builder(config)
        .shards(SHARDS)
        .policy(ServePolicy {
            max_batch: BATCH,
            max_wait: Duration::from_micros(500),
        })
        .filter_threshold(ThresholdPolicy::TopRatio(0.05));
    if adaptive {
        builder = builder.controller(controller());
    }
    builder.build().expect("engine spawns")
}

#[derive(Clone, Copy)]
struct WindowStat {
    hit_rate: f64,
    mean_us: f64,
}

/// Windowed deltas between two cumulative report snapshots.
fn window_stat(prev: &ServeReport, cur: &ServeReport) -> WindowStat {
    let hits = cur.cache.hits - prev.cache.hits;
    let misses = cur.cache.misses - prev.cache.misses;
    let queries = (cur.queries - prev.queries).max(1);
    let delta_ns = cur
        .sim_elapsed
        .as_ns()
        .saturating_sub(prev.sim_elapsed.as_ns());
    WindowStat {
        hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        mean_us: delta_ns as f64 / 1_000.0 / queries as f64,
    }
}

fn main() {
    println!(
        "== drift study: {SHARDS}-shard serving, {ROWS}x{COLS}, hot-set rotation after \
         window {PHASE_A_WINDOWS} ({HOT_A} → {HOT_B} planted hot rows, {}-KiB initial cache) ==",
        CACHE_START >> 10
    );
    let weights = planted_weights();
    let mut static_eng = build_engine(false);
    let mut adaptive_eng = build_engine(true);
    static_eng
        .deploy(&weights)
        .expect("deploy fits the tiny device");
    adaptive_eng
        .deploy(&weights)
        .expect("deploy fits the tiny device");

    let total = PHASE_A_WINDOWS + PHASE_B_WINDOWS;
    let mut static_prev = static_eng.report();
    let mut adaptive_prev = adaptive_eng.report();
    let mut static_last = WindowStat {
        hit_rate: 0.0,
        mean_us: 0.0,
    };
    let mut adaptive_last = static_last;
    for window in 0..total {
        let inputs = window_queries(window);
        static_eng
            .classify_batch(&inputs, K)
            .expect("static window");
        adaptive_eng
            .classify_batch(&inputs, K)
            .expect("adaptive window");
        adaptive_eng.control_tick().expect("control tick");

        let static_now = static_eng.report();
        let adaptive_now = adaptive_eng.report();
        static_last = window_stat(&static_prev, &static_now);
        adaptive_last = window_stat(&adaptive_prev, &adaptive_now);
        static_prev = static_now;
        adaptive_prev = adaptive_now;
        println!(
            "window={window} phase={} static_hit={:.3} adaptive_hit={:.3} \
             static_win_us={:.1} adaptive_win_us={:.1} adaptive_cache_kib={}",
            if window < PHASE_A_WINDOWS { "A" } else { "B" },
            static_last.hit_rate,
            adaptive_last.hit_rate,
            static_last.mean_us,
            adaptive_last.mean_us,
            adaptive_prev.cache.capacity_bytes >> 10,
        );
    }

    let (mut resizes, mut retunes, mut reinterleaves, mut retires, mut rows_replaced) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    for (_, action) in adaptive_eng.control_log() {
        match action {
            ControlAction::ResizeCache { .. } => resizes += 1,
            ControlAction::SetPolicy { .. } => retunes += 1,
            ControlAction::Reinterleave { rows } => {
                reinterleaves += 1;
                rows_replaced += rows.len();
            }
            ControlAction::RetireDie { .. } => retires += 1,
        }
    }
    let static_report = static_eng.report();
    let adaptive_report = adaptive_eng.report();
    println!(
        "actions resizes={resizes} retunes={retunes} reinterleaves={reinterleaves} \
         reinterleaved_rows={rows_replaced} retires={retires}"
    );
    println!(
        "final_window static_hit={:.3} adaptive_hit={:.3} static_us={:.1} adaptive_us={:.1}",
        static_last.hit_rate, adaptive_last.hit_rate, static_last.mean_us, adaptive_last.mean_us
    );
    println!(
        "mixed_version_batches static={} adaptive={}",
        static_report.mixed_version_batches, adaptive_report.mixed_version_batches
    );

    let mut failed = false;
    if static_report.mixed_version_batches != 0 || adaptive_report.mixed_version_batches != 0 {
        eprintln!("error: mixed-version batches observed — commits must stay atomic");
        failed = true;
    }
    if reinterleaves == 0 {
        eprintln!("error: the hot-set rotation never triggered a drift re-interleave");
        failed = true;
    }
    if resizes == 0 {
        eprintln!("error: the post-shift hit-rate collapse never grew the cache");
        failed = true;
    }
    if adaptive_last.hit_rate < static_last.hit_rate + 0.10 {
        eprintln!(
            "error: adaptive final-window hit rate {:.3} did not recover past the static \
             baseline {:.3}",
            adaptive_last.hit_rate, static_last.hit_rate
        );
        failed = true;
    }
    if adaptive_last.mean_us > static_last.mean_us * 0.95 {
        eprintln!(
            "error: adaptive final-window latency {:.1} us did not recover below the static \
             baseline {:.1} us",
            adaptive_last.mean_us, static_last.mean_us
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "drift study passed: adaptive controller recovered from the hot-set rotation \
         ({reinterleaves} re-interleaves, {resizes} cache grows, {retunes} retunes), \
         static baseline stayed degraded, zero mixed-version batches"
    );
}
