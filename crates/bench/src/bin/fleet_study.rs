//! Fleet-scale serving study: the overload knee under open-loop load.
//!
//! A closed-loop driver can never overload the system it measures; this
//! study drives a replicated [`Fleet`] with a seeded open-loop Poisson
//! arrival process ([`OpenLoopArrivals`]) swept across offered load, and
//! checks the three properties the fleet layer exists for:
//!
//! 1. **Low load** — deadline-aware admission is invisible: zero
//!    latency-sensitive SLO violations, (almost) nothing shed.
//! 2. **Overload knee** — admission control sheds the batch class first
//!    and holds latency-sensitive p99 within its SLO, while the
//!    no-admission baseline admits everything and its p99 diverges far
//!    past the target.
//! 3. **Version safety under churn** — a rolling weight deploy with
//!    arrivals interleaved between per-replica commits serves zero
//!    requests from a stale-epoch replica and zero mixed-version engine
//!    batches; a single-replica crash recovers from its journal and
//!    rejoins routing at the fleet epoch.
//!
//! Any violated invariant exits 1; the last line on success is
//! `fleet study passed`. The service time is probed, not hard-coded, so
//! the derived SLO targets track the simulated device model.

use ecssd_core::prelude::*;
use ecssd_core::UpdateBatch;
use ecssd_serve::{AdmissionControl, ClassReport, Fleet, FleetPolicy, FleetReport, ServeEngine};
use ecssd_ssd::JournalConfig;
use ecssd_workloads::{Arrival, OpenLoopArrivals, RateCurve, ZipfPopularity};

const D: usize = 32;
const L: usize = 600;
const K: usize = 5;
const REPLICAS: usize = 2;
const DISTINCT_QUERIES: usize = 48;
const ZIPF_EXPONENT: f64 = 1.1;
const LS_FRACTION: f64 = 0.5;
const ARRIVALS_PER_POINT: usize = 320;
const SEED: u64 = 0xf1ee7;

fn fail(what: &str) -> ! {
    eprintln!("error: {what}");
    std::process::exit(1);
}

fn query_for(id: u64) -> Vec<f32> {
    (0..D)
        .map(|i| ((i as f32) * 0.17 + id as f32 * 0.61).sin())
        .collect()
}

fn weights() -> DenseMatrix {
    DenseMatrix::random(L, D, 0xec55d)
}

fn request_for(arrival: &Arrival) -> Request {
    let class = if arrival.class_draw < LS_FRACTION {
        QueryClass::LatencySensitive
    } else {
        QueryClass::Batch
    };
    Request::new(query_for(arrival.query_id), K)
        .with_class(class)
        .with_arrival_ns(arrival.at_ns)
}

/// Probes the per-query device service time by timing one full pre-formed
/// batch on a single engine (no fleet queueing involved).
fn probe_service_ns() -> u64 {
    let mut engine = ServeEngine::builder(EcssdConfig::tiny())
        .build()
        .unwrap_or_else(|e| fail(&format!("probe engine: {e}")));
    engine
        .deploy(&weights())
        .unwrap_or_else(|e| fail(&format!("probe deploy: {e}")));
    let batch: Vec<Request> = (0..FleetPolicy::default().max_batch)
        .map(|i| Request::new(query_for(i as u64), K))
        .collect();
    let n = batch.len() as u64;
    let outcome = engine
        .submit_formed(batch)
        .and_then(|p| p.wait())
        .unwrap_or_else(|e| fail(&format!("probe batch: {e}")));
    (outcome.sim_ns / n).max(1)
}

struct Targets {
    slo: SloTargets,
    capacity_qps: f64,
}

fn run_point(targets: &Targets, load: f64, admission: AdmissionControl) -> FleetReport {
    let mut fleet = Fleet::builder(EcssdConfig::tiny())
        .replicas(REPLICAS)
        .slo(targets.slo)
        .admission(admission)
        .policy(FleetPolicy {
            // The baseline must be free to build a deep backlog: its
            // failure mode is latency divergence, not queue overflow.
            queue_limit: 100_000,
            ..FleetPolicy::default()
        })
        .build()
        .unwrap_or_else(|e| fail(&format!("fleet build: {e}")));
    fleet
        .deploy(&weights())
        .unwrap_or_else(|e| fail(&format!("fleet deploy: {e}")));
    let arrivals = OpenLoopArrivals::new(
        SEED,
        RateCurve::Diurnal {
            base_qps: targets.capacity_qps * load,
            amplitude: 0.3,
            period_s: 0.05,
        },
        ZipfPopularity::new(DISTINCT_QUERIES, ZIPF_EXPONENT),
    );
    for arrival in arrivals.take(ARRIVALS_PER_POINT) {
        let _ = fleet
            .offer(request_for(&arrival))
            .unwrap_or_else(|e| fail(&format!("offer: {e}")));
    }
    fleet
        .drain()
        .unwrap_or_else(|e| fail(&format!("drain: {e}")));
    fleet.report()
}

fn shed_total(c: &ClassReport) -> u64 {
    c.shed_queue_full + c.shed_deadline + c.shed_unavailable
}

fn print_point(load: f64, admission: &str, r: &FleetReport) {
    let ls = &r.latency_sensitive;
    let b = &r.batch;
    println!(
        "load={load:.2}x admission={admission} ls_p99_us={:.1} ls_viol={} ls_shed={} \
         batch_p99_us={:.1} batch_viol={} batch_shed={} ls_goodput_qps={:.0} \
         mixed_version_batches={}",
        ls.p99_us,
        ls.slo_violations,
        shed_total(ls),
        b.p99_us,
        b.slo_violations,
        shed_total(b),
        ls.goodput_qps,
        r.mixed_version_batches,
    );
}

/// Phase 1+2: the load sweep and the overload knee.
fn knee_study(targets: &Targets) {
    let deadline_aware = AdmissionControl::default();
    let mut low_report = None;
    let mut over_admission = None;
    let mut over_baseline = None;
    for &load in &[0.3, 0.6, 1.0, 1.5, 2.5] {
        let managed = run_point(targets, load, deadline_aware);
        print_point(load, "deadline", &managed);
        let baseline = run_point(targets, load, AdmissionControl::None);
        print_point(load, "none", &baseline);
        if load == 0.3 {
            low_report = Some(managed.clone());
        }
        if load == 2.5 {
            over_admission = Some(managed);
            over_baseline = Some(baseline);
        }
    }

    // Invariant 1: at low load admission is invisible for the LS class.
    let low = low_report.unwrap_or_else(|| fail("no low-load point"));
    println!(
        "low-load ls_slo_violations={} ls_shed={}",
        low.latency_sensitive.slo_violations,
        shed_total(&low.latency_sensitive)
    );
    if low.latency_sensitive.slo_violations != 0 {
        fail("latency-sensitive SLO violated at low load");
    }

    // Invariant 2: at overload, admission sheds batch first and holds the
    // LS tail within SLO; the baseline's tail diverges past it.
    let over = over_admission.unwrap_or_else(|| fail("no overload point"));
    let base = over_baseline.unwrap_or_else(|| fail("no overload baseline"));
    let ls_shed_frac =
        shed_total(&over.latency_sensitive) as f64 / over.latency_sensitive.arrived.max(1) as f64;
    let batch_shed_frac = shed_total(&over.batch) as f64 / over.batch.arrived.max(1) as f64;
    let slo_us = targets.slo.latency_sensitive_us as f64;
    let within_slo = over.latency_sensitive.p99_us <= slo_us;
    let baseline_diverged = base.latency_sensitive.p99_us > slo_us;
    println!(
        "overload knee: admission_ls_p99_us={:.1} slo_us={slo_us:.0} within_slo={within_slo} \
         baseline_ls_p99_us={:.1} baseline_diverged={baseline_diverged}",
        over.latency_sensitive.p99_us, base.latency_sensitive.p99_us
    );
    println!(
        "shedding order: batch_shed_frac={batch_shed_frac:.3} ls_shed_frac={ls_shed_frac:.3} \
         batch_first={}",
        batch_shed_frac > 0.0 && batch_shed_frac >= ls_shed_frac
    );
    if !within_slo {
        fail("admission failed to hold latency-sensitive p99 within SLO at overload");
    }
    if !baseline_diverged {
        fail("no-admission baseline did not diverge — the sweep is not overloaded");
    }
    if batch_shed_frac <= 0.0 || batch_shed_frac < ls_shed_frac {
        fail("batch class did not shed first under overload");
    }
    if shed_total(&base.latency_sensitive) + shed_total(&base.batch) > 0 {
        fail("baseline shed traffic despite unbounded queue");
    }
}

/// Phase 3a: rolling deploy with interleaved arrivals.
fn rolling_deploy_study(targets: &Targets) {
    let mut fleet = Fleet::builder(EcssdConfig::tiny())
        .replicas(3)
        .slo(SloTargets {
            latency_sensitive_us: targets.slo.latency_sensitive_us * 100,
            batch_us: targets.slo.batch_us * 100,
        })
        .build()
        .unwrap_or_else(|e| fail(&format!("rolling fleet: {e}")));
    fleet
        .deploy(&weights())
        .unwrap_or_else(|e| fail(&format!("rolling deploy: {e}")));
    let mut arrivals = OpenLoopArrivals::new(
        SEED ^ 0x10,
        RateCurve::Constant {
            qps: targets.capacity_qps * 0.5,
        },
        ZipfPopularity::new(DISTINCT_QUERIES, ZIPF_EXPONENT),
    );
    for arrival in arrivals.by_ref().take(60) {
        let _ = fleet
            .offer(request_for(&arrival))
            .unwrap_or_else(|e| fail(&e.to_string()));
    }
    fleet.drain().unwrap_or_else(|e| fail(&e.to_string()));
    let epoch_before = fleet.epoch();

    let update = UpdateBatch::new(D)
        .replace(0, query_for(99))
        .unwrap_or_else(|e| fail(&format!("update batch: {e}")));
    fleet
        .rolling_update_begin(update)
        .unwrap_or_else(|e| fail(&e.to_string()));
    loop {
        let more = fleet
            .rolling_update_step()
            .unwrap_or_else(|e| fail(&format!("rolling step: {e}")));
        for arrival in arrivals.by_ref().take(40) {
            let _ = fleet
                .offer(request_for(&arrival))
                .unwrap_or_else(|e| fail(&e.to_string()));
        }
        fleet.drain().unwrap_or_else(|e| fail(&e.to_string()));
        if !more {
            break;
        }
    }
    let report = fleet.report();
    let lag_max = report
        .per_replica
        .iter()
        .map(|r| r.epoch_lag)
        .max()
        .unwrap_or(0);
    println!(
        "rolling deploy: epoch {}->{} stale_served={} mixed_version_batches={} epoch_lag_max={}",
        epoch_before,
        report.fleet_epoch,
        report.stale_served,
        report.mixed_version_batches,
        lag_max
    );
    if report.fleet_epoch <= epoch_before {
        fail("rolling deploy did not advance the fleet epoch");
    }
    if report.stale_served != 0 {
        fail("requests were served by a stale-epoch replica during the rolling deploy");
    }
    if report.mixed_version_batches != 0 {
        fail("an engine batch mixed weight versions during the rolling deploy");
    }
    if lag_max != 0 {
        fail("a replica ended the rolling deploy behind the fleet epoch");
    }
}

/// Phase 3b: single-replica crash and journaled recovery mid-stream.
fn crash_study(targets: &Targets) {
    let mut fleet = Fleet::builder(EcssdConfig::tiny())
        .replicas(REPLICAS)
        .journal(JournalConfig::default())
        .slo(SloTargets {
            latency_sensitive_us: targets.slo.latency_sensitive_us * 100,
            batch_us: targets.slo.batch_us * 100,
        })
        .build()
        .unwrap_or_else(|e| fail(&format!("crash fleet: {e}")));
    fleet
        .deploy(&weights())
        .unwrap_or_else(|e| fail(&format!("crash deploy: {e}")));
    let mut arrivals = OpenLoopArrivals::new(
        SEED ^ 0x20,
        RateCurve::Constant {
            qps: targets.capacity_qps * 0.5,
        },
        ZipfPopularity::new(DISTINCT_QUERIES, ZIPF_EXPONENT),
    );
    for arrival in arrivals.by_ref().take(80) {
        let _ = fleet
            .offer(request_for(&arrival))
            .unwrap_or_else(|e| fail(&e.to_string()));
    }
    fleet.drain().unwrap_or_else(|e| fail(&e.to_string()));

    let summary = fleet
        .crash_replica(1, None)
        .unwrap_or_else(|e| fail(&format!("crash_replica: {e}")));

    for arrival in arrivals.by_ref().take(80) {
        let _ = fleet
            .offer(request_for(&arrival))
            .unwrap_or_else(|e| fail(&e.to_string()));
    }
    fleet.drain().unwrap_or_else(|e| fail(&e.to_string()));
    let report = fleet.report();
    println!(
        "crash recovery: rows_lost={} recovery_us={} consistent={} post_crash_queries={} \
         epoch_lag={} mixed_version_batches={}",
        summary.rows_lost,
        summary.recovery_ns_max / 1_000,
        summary.shards_consistent,
        report.per_replica[1].queries,
        report.per_replica[1].epoch_lag,
        report.mixed_version_batches
    );
    if summary.rows_lost != 0 || !summary.shards_consistent {
        fail("journaled replica recovery lost durable state");
    }
    if report.per_replica[1].epoch_lag != 0 || report.per_replica[1].queries == 0 {
        fail("recovered replica did not rejoin routing at the fleet epoch");
    }
    if report.mixed_version_batches != 0 {
        fail("an engine batch mixed weight versions across the crash");
    }
}

fn main() {
    let service_ns = probe_service_ns();
    let batch_ns = service_ns * FleetPolicy::default().max_batch as u64;
    // SLO targets derived from the probed service time, so they track the
    // device model instead of hard-coding microseconds: the LS budget is
    // one batching window plus a few batch times.
    let slo = SloTargets {
        latency_sensitive_us: (FleetPolicy::default().max_wait_us + 4 * batch_ns / 1_000).max(1),
        batch_us: (FleetPolicy::default().max_wait_us + 80 * batch_ns / 1_000).max(1),
    };
    // Fleet capacity: every replica serves one query per service time.
    let capacity_qps = REPLICAS as f64 * 1e9 / service_ns as f64;
    println!(
        "fleet capacity probe: service_us={:.1} capacity_qps={capacity_qps:.0} \
         ls_slo_us={} batch_slo_us={}",
        service_ns as f64 / 1_000.0,
        slo.latency_sensitive_us,
        slo.batch_us
    );
    let targets = Targets { slo, capacity_qps };

    knee_study(&targets);
    rolling_deploy_study(&targets);
    crash_study(&targets);
    println!("fleet study passed");
}
