//! Runs the fault-injection study: UECC rate × degradation policy vs
//! throughput and recall, plus the killed-die interleaving comparison.
use ecssd_bench::experiments::common::Window;

fn main() {
    let window = Window {
        queries: 10,
        max_tiles: 64,
    };
    let report = ecssd_bench::fault_study::run(window);
    print!("{}", ecssd_bench::fault_study::render(&report));
    if !report.deterministic {
        eprintln!("error: same-seed replay diverged");
        std::process::exit(1);
    }
}
