//! RecSSD-style embedding-gather study on the task-generic substrate.
//!
//! Proves the in-storage execution substrate is task-generic: the same
//! [`EcssdMachine`] schedule/fetch/layout machinery that serves extreme
//! classification runs an embedding-table gather workload
//! ([`ecssd_workloads::EmbeddingTableTrace`]) through
//! [`EcssdMachine::run_gather_window`]. Sweeps
//! **batch × hot-row-cache capacity × interleaving strategy** and reports,
//! per point:
//!
//! * per-query simulated latency p50/p99 (delta makespans of consecutive
//!   single-query windows — the device timelines persist across windows,
//!   so each delta is one query's marginal service time),
//! * the hot-row cache hit rate (skewed lookups recur, so a DRAM-cached
//!   hot row saves its flash fetch — the RecSSD observation),
//! * flash bytes moved over the channel buses.
//!
//! The study fails (exit 1) when a report is not tagged with the gather
//! task, when percentiles are non-monotone, or when enabling the cache
//! fails to reduce flash traffic and produce hits on this skewed trace.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ecssd_core::{
    DataPlacement, DegradationPolicy, EcssdConfig, EcssdMachine, MachineVariant, TaskKind,
};
use ecssd_float::MacCircuit;
use ecssd_layout::InterleavingStrategy;
use ecssd_trace::percentile_us;
use ecssd_workloads::{Benchmark, CandidateSource, EmbeddingTableTrace, GatherTraceConfig};

/// Embedding-table rows (32 tiles of 512 under the default tile size).
const TABLE_ROWS: u64 = 1 << 14;
/// Pooled lookups per query batch.
const LOOKUPS: f64 = 256.0;
/// Queries measured per sweep point.
const QUERIES: usize = 32;

/// Forwards a gather trace while adding a query-index base, so repeated
/// single-query windows replay *successive* trace queries instead of
/// query 0 forever (the machine restarts query numbering every window).
struct ShiftedTrace {
    inner: EmbeddingTableTrace,
    base: Arc<AtomicUsize>,
}

impl CandidateSource for ShiftedTrace {
    fn benchmark(&self) -> &Benchmark {
        self.inner.benchmark()
    }

    fn tile_rows(&self) -> usize {
        self.inner.tile_rows()
    }

    fn candidates(&mut self, query: usize, tile: usize) -> Vec<u64> {
        let base = self.base.load(Ordering::Relaxed);
        self.inner.candidates(query + base, tile)
    }

    fn predicted_hotness(&self, tile: usize) -> Vec<f32> {
        self.inner.predicted_hotness(tile)
    }
}

struct Point {
    batch: usize,
    cache_kib: u64,
    interleaving: &'static str,
    task: TaskKind,
    p50_us: f64,
    p99_us: f64,
    hit_rate: f64,
    hits: u64,
    flash_bytes: u64,
    gathered_rows: u64,
}

fn strategy_name(strategy: InterleavingStrategy) -> &'static str {
    match strategy {
        InterleavingStrategy::Sequential => "sequential",
        InterleavingStrategy::Uniform => "uniform",
        InterleavingStrategy::Learned(_) => "learned",
    }
}

fn run_point(batch: usize, cache_bytes: u64, interleaving: InterleavingStrategy) -> Point {
    let config = EcssdConfig::tiny_builder()
        .batch(batch)
        .buffer_bytes(1 << 20)
        .hot_cache_bytes(cache_bytes)
        .build()
        .expect("valid study configuration");
    // Homogeneous placement: the gather task has no INT4 screener to
    // pin in DRAM; the substrate's schedule/fetch/layout path is shared
    // regardless.
    let variant = MachineVariant {
        mac: MacCircuit::AlignmentFree,
        placement: DataPlacement::Homogeneous,
        interleaving,
        overlap: true,
        per_tile_sync: true,
        training_queries: 24,
        degradation: DegradationPolicy::Fail,
    };
    let base = Arc::new(AtomicUsize::new(0));
    let trace = EmbeddingTableTrace::new(
        GatherTraceConfig::recssd_default(0x2ec55d)
            .with_table_rows(TABLE_ROWS)
            .with_lookups_per_query(LOOKUPS),
    );
    let mut machine = EcssdMachine::new(
        config,
        variant,
        Box::new(ShiftedTrace {
            inner: trace,
            base: Arc::clone(&base),
        }),
    )
    .expect("machine fits the tiny device");
    let mut latencies_ns = Vec::with_capacity(QUERIES);
    let mut prev_ns = 0u64;
    let mut last = None;
    for q in 0..QUERIES {
        base.store(q, Ordering::Relaxed);
        let report = machine
            .run_gather_window(1, usize::MAX)
            .expect("gather window is fault-free");
        let end = report.makespan.as_ns();
        latencies_ns.push(end - prev_ns);
        prev_ns = end;
        last = Some(report);
    }
    let report = last.expect("at least one window ran");
    latencies_ns.sort_unstable();
    let hits = report.cache.hits;
    Point {
        batch,
        cache_kib: cache_bytes >> 10,
        interleaving: strategy_name(interleaving),
        task: report.task,
        p50_us: percentile_us(&latencies_ns, 0.50),
        p99_us: percentile_us(&latencies_ns, 0.99),
        hit_rate: report.cache.hit_rate(),
        hits,
        flash_bytes: report.fp_channel_bytes.iter().sum(),
        gathered_rows: report.candidate_rows,
    }
}

fn main() {
    println!(
        "== RecSSD gather study: {TABLE_ROWS}-row table, {LOOKUPS} lookups/query, \
         {QUERIES} queries per point =="
    );
    let batches = [4usize, 16];
    let caches = [0u64, 1 << 20];
    let strategies = [
        InterleavingStrategy::Sequential,
        InterleavingStrategy::Uniform,
        InterleavingStrategy::Learned(Default::default()),
    ];
    let mut failed = false;
    let mut points = Vec::new();
    for &batch in &batches {
        for &cache in &caches {
            for &strategy in &strategies {
                let p = run_point(batch, cache, strategy);
                println!(
                    "gather batch={} cache_kib={} interleaving={} task={} p50_us={:.2} \
                     p99_us={:.2} hit_rate={:.3} hits={} flash_mib={:.2} rows={}",
                    p.batch,
                    p.cache_kib,
                    p.interleaving,
                    p.task,
                    p.p50_us,
                    p.p99_us,
                    p.hit_rate,
                    p.hits,
                    p.flash_bytes as f64 / (1 << 20) as f64,
                    p.gathered_rows
                );
                if p.task != TaskKind::EmbeddingGather {
                    eprintln!("error: gather window reported task {}", p.task);
                    failed = true;
                }
                if p.p50_us <= 0.0 || p.p99_us < p.p50_us {
                    eprintln!(
                        "error: non-monotone percentiles (p50 {:.2}, p99 {:.2})",
                        p.p50_us, p.p99_us
                    );
                    failed = true;
                }
                if p.gathered_rows == 0 {
                    eprintln!("error: the sweep point gathered no rows");
                    failed = true;
                }
                points.push(p);
            }
        }
    }
    // The RecSSD observation: on a skewed lookup trace, caching hot rows
    // in device DRAM must produce hits and cut flash traffic, at every
    // batch × interleaving combination.
    for uncached in points.iter().filter(|p| p.cache_kib == 0) {
        let cached = points
            .iter()
            .find(|p| {
                p.cache_kib > 0
                    && p.batch == uncached.batch
                    && p.interleaving == uncached.interleaving
            })
            .expect("every uncached point has a cached twin");
        if cached.hits == 0 || cached.flash_bytes >= uncached.flash_bytes {
            eprintln!(
                "error: batch={} interleaving={}: hot-row cache ineffective \
                 (hits={}, flash {} -> {} bytes)",
                uncached.batch,
                uncached.interleaving,
                cached.hits,
                uncached.flash_bytes,
                cached.flash_bytes
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "recssd study passed: {} sweep points across {} interleaving \
         strategies, gather-tagged reports, cache cuts flash traffic",
        points.len(),
        strategies.len()
    );
}
