//! Regenerates Fig. 9 (MAC circuit area/power comparison).
fn main() {
    println!("{}", ecssd_bench::fig09_mac::run());
}
