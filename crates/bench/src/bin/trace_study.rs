//! Per-stage latency attribution study.
//!
//! Sweeps machine designs and window sizes with span tracing enabled and
//! prints the per-stage simulated-time breakdown for every point, checking
//! that exclusive stage attribution plus idle reconciles with the
//! end-to-end simulated makespan within 1%. It then pushes a traced query
//! stream through a 2-shard [`ServeEngine`] and exports the full span set
//! as Chrome `trace_event` JSON — open it at `chrome://tracing` or
//! <https://ui.perfetto.dev> to see a classify_batch laid out per shard,
//! channel, and engine.
//!
//! Usage: `trace_study [OUT.json]` (default `trace_study_trace.json`).

use std::time::Duration;

use ecssd_core::prelude::*;
use ecssd_core::{EcssdMachine, MachineVariant, UpdateBatch};
use ecssd_serve::{ServeEngine, ServePolicy};
use ecssd_trace::{chrome_trace_json, StageBreakdown};
use ecssd_workloads::{Benchmark, SampledWorkload, TraceConfig};

const RECONCILE_TOLERANCE: f64 = 0.01;

fn machine(variant: MachineVariant) -> EcssdMachine {
    let bench = Benchmark::by_abbrev("Transformer-W268K").expect("known benchmark");
    let workload = SampledWorkload::new(bench, TraceConfig::paper_default());
    EcssdMachine::new(EcssdConfig::paper_default(), variant, Box::new(workload))
        .expect("screener fits DRAM")
}

/// Fails the study unless attributed stage time plus idle matches the
/// end-to-end simulated time within the tolerance.
fn check_reconciles(label: &str, b: &StageBreakdown) {
    if !b.reconciles(RECONCILE_TOLERANCE) {
        eprintln!(
            "error: {label}: stage attribution ({} ns) + idle ({} ns) does not \
             reconcile with end-to-end simulated time ({} ns) within 1%",
            b.attributed_total_ns(),
            b.idle_ns,
            b.total_ns
        );
        std::process::exit(1);
    }
}

fn machine_sweep() {
    let designs = [
        ("ECSSD (paper)", MachineVariant::paper_ecssd()),
        ("naive baseline", MachineVariant::baseline_start()),
    ];
    let windows = [(2usize, 16usize), (3, 24)];
    for (name, variant) in designs {
        for (queries, tiles) in windows {
            let mut m = machine(variant);
            let _ = m.enable_tracing();
            let report = m.run_window(queries, tiles).expect("fault-free study run");
            let b = report.breakdown.expect("traced run must carry a breakdown");
            println!(
                "== {name}, {queries} queries x {tiles} tiles \
                 (makespan {} ns) ==",
                report.makespan.as_ns()
            );
            println!("{}", b.table());
            check_reconciles(name, &b);
        }
    }
}

fn serve_trace(out_path: &str) {
    let config = EcssdConfig::tiny_builder()
        .hot_cache_bytes(1 << 20)
        .build()
        .expect("valid study configuration");
    let policy = ServePolicy {
        max_batch: 8,
        max_wait: Duration::from_micros(500),
    };
    let mut engine = ServeEngine::builder(config)
        .shards(2)
        .policy(policy)
        .tracing(true)
        .build()
        .expect("engine spawns");
    engine
        .deploy(&DenseMatrix::random(1_200, 64, 0xec55d))
        .expect("deploy fits the tiny device");
    for batch in 0..6 {
        let inputs: Vec<Vec<f32>> = (0..8)
            .map(|q| {
                let phase = ((batch * 8 + q) % 6) as f32 * 0.37;
                (0..64).map(|i| ((i as f32) * 0.11 + phase).sin()).collect()
            })
            .collect();
        engine
            .classify_batch(&inputs, 5)
            .expect("fault-free serving");
    }
    let report = engine.report();
    let b = report
        .breakdown
        .as_ref()
        .expect("traced engine must report a breakdown");
    println!(
        "== 2-shard serving, {} queries / {} batches ==",
        report.queries, report.batches
    );
    println!("{}", b.table());
    check_reconciles("serving", b);

    let tracer = engine.tracer().expect("with_tracing exposes the tracer");
    let json = chrome_trace_json(&tracer.spans(), &tracer.counters());
    std::fs::write(out_path, &json).expect("write trace file");
    println!("Chrome trace written to {out_path} ({} bytes)", json.len());
    validate_trace_json(&json);
}

/// Checks the exported document: it must parse as JSON and hold at least
/// one complete (`"ph":"X"`) span event. The offline stub of serde_json
/// cannot parse anything; there the parse step is skipped with a note and
/// CI re-validates against the real crate.
fn validate_trace_json(json: &str) {
    let complete = json.matches("\"ph\":\"X\"").count();
    if complete == 0 {
        eprintln!("error: exported trace holds no complete ('X') span events");
        std::process::exit(1);
    }
    if !json.starts_with('[') || !json.trim_end().ends_with(']') {
        eprintln!("error: exported trace is not a trace_event array");
        std::process::exit(1);
    }
    if serde_json::from_str::<serde_json::Value>("[]").is_err() {
        println!("note: serde_json stub in use; JSON parse validation deferred to CI");
        return;
    }
    if let Err(e) = serde_json::from_str::<serde_json::Value>(json) {
        eprintln!("error: exported trace is not valid JSON: {e}");
        std::process::exit(1);
    }
    println!("trace JSON validated: {complete} complete span events");
}

/// Online-update wear accounting: sustained row overwrites on the
/// functional device until the FTL's garbage collector fires, then the
/// wear/GC columns of the health report plus its per-die erase spread
/// ([`ecssd_ssd::DieWearReport`], aggregated by the FTL).
fn wear_and_gc() {
    const ROWS: usize = 1_200;
    const COLS: usize = 64;
    let mut dev = Ecssd::new(EcssdConfig::tiny());
    dev.enable();
    dev.weight_deploy(&DenseMatrix::random(ROWS, COLS, 0xec55d))
        .expect("deploy fits the tiny device");
    for serial in 0..400usize {
        let mut batch = UpdateBatch::new(COLS);
        for j in 0..4usize {
            let r = (serial * 101 + j * 293) % ROWS;
            let phase = serial as f32 * 0.07 + j as f32 * 0.31;
            let row: Vec<f32> = (0..COLS)
                .map(|i| ((i as f32) * 0.13 + phase).sin() * 1.5)
                .collect();
            batch = batch.replace(r, row).expect("well-formed batch");
        }
        dev.stage_update(&batch).expect("stage under churn");
        dev.commit_update().expect("commit under churn");
    }
    let health = dev.health_report();
    println!("== online-update wear & GC (tiny device, 1600 row overwrites) ==");
    println!("update_programs   {:>8}", health.update_programs);
    println!("gc_moved_pages    {:>8}", health.gc_moved_pages);
    println!("gc_erased_blocks  {:>8}", health.gc_erased_blocks);
    println!("wear_max_erases   {:>8}", health.wear_max_erases);
    println!("wear_mean_erases  {:>8.2}", health.wear_mean_erases);
    let wear = health
        .die_wear
        .as_ref()
        .expect("functional device reports per-die wear");
    print!("per-die erases   ");
    for erases in &wear.per_die {
        print!(" {erases:>5}");
    }
    println!();
    println!("die_wear_balance  {:>8.3}", wear.balance());
    if health.gc_erased_blocks == 0 {
        eprintln!("error: sustained update churn never triggered GC");
        std::process::exit(1);
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_study_trace.json".to_string());
    machine_sweep();
    serve_trace(&out_path);
    wear_and_gc();
    println!("trace study passed: all breakdowns reconcile within 1%");
}
