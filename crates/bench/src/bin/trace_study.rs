//! Per-stage latency attribution study.
//!
//! Sweeps machine designs and window sizes with span tracing enabled and
//! prints the per-stage simulated-time breakdown for every point, checking
//! that exclusive stage attribution plus idle reconciles with the
//! end-to-end simulated makespan within 1%. It then pushes a traced query
//! stream through a 2-shard [`ServeEngine`] and exports the full span set
//! as Chrome `trace_event` JSON — open it at `chrome://tracing` or
//! <https://ui.perfetto.dev> to see a classify_batch laid out per shard,
//! channel, and engine.
//!
//! Usage: `trace_study [OUT.json]` (default `trace_study_trace.json`).

use std::time::Duration;

use ecssd_core::prelude::*;
use ecssd_core::{EcssdMachine, MachineVariant};
use ecssd_serve::{ServeEngine, ServePolicy};
use ecssd_trace::{chrome_trace_json, StageBreakdown};
use ecssd_workloads::{Benchmark, SampledWorkload, TraceConfig};

const RECONCILE_TOLERANCE: f64 = 0.01;

fn machine(variant: MachineVariant) -> EcssdMachine {
    let bench = Benchmark::by_abbrev("Transformer-W268K").expect("known benchmark");
    let workload = SampledWorkload::new(bench, TraceConfig::paper_default());
    EcssdMachine::new(EcssdConfig::paper_default(), variant, Box::new(workload))
        .expect("screener fits DRAM")
}

/// Fails the study unless attributed stage time plus idle matches the
/// end-to-end simulated time within the tolerance.
fn check_reconciles(label: &str, b: &StageBreakdown) {
    if !b.reconciles(RECONCILE_TOLERANCE) {
        eprintln!(
            "error: {label}: stage attribution ({} ns) + idle ({} ns) does not \
             reconcile with end-to-end simulated time ({} ns) within 1%",
            b.attributed_total_ns(),
            b.idle_ns,
            b.total_ns
        );
        std::process::exit(1);
    }
}

fn machine_sweep() {
    let designs = [
        ("ECSSD (paper)", MachineVariant::paper_ecssd()),
        ("naive baseline", MachineVariant::baseline_start()),
    ];
    let windows = [(2usize, 16usize), (3, 24)];
    for (name, variant) in designs {
        for (queries, tiles) in windows {
            let mut m = machine(variant);
            let _ = m.enable_tracing();
            let report = m.run_window(queries, tiles).expect("fault-free study run");
            let b = report.breakdown.expect("traced run must carry a breakdown");
            println!(
                "== {name}, {queries} queries x {tiles} tiles \
                 (makespan {} ns) ==",
                report.makespan.as_ns()
            );
            println!("{}", b.table());
            check_reconciles(name, &b);
        }
    }
}

fn serve_trace(out_path: &str) {
    let config = EcssdConfig::tiny_builder()
        .hot_cache_bytes(1 << 20)
        .build()
        .expect("valid study configuration");
    let policy = ServePolicy {
        max_batch: 8,
        max_wait: Duration::from_micros(500),
    };
    let mut engine = ServeEngine::with_tracing(config, 2, policy).expect("engine spawns");
    engine
        .deploy(&DenseMatrix::random(1_200, 64, 0xec55d))
        .expect("deploy fits the tiny device");
    for batch in 0..6 {
        let inputs: Vec<Vec<f32>> = (0..8)
            .map(|q| {
                let phase = ((batch * 8 + q) % 6) as f32 * 0.37;
                (0..64).map(|i| ((i as f32) * 0.11 + phase).sin()).collect()
            })
            .collect();
        engine
            .classify_batch(&inputs, 5)
            .expect("fault-free serving");
    }
    let report = engine.report();
    let b = report
        .breakdown
        .as_ref()
        .expect("traced engine must report a breakdown");
    println!(
        "== 2-shard serving, {} queries / {} batches ==",
        report.queries, report.batches
    );
    println!("{}", b.table());
    check_reconciles("serving", b);

    let tracer = engine.tracer().expect("with_tracing exposes the tracer");
    let json = chrome_trace_json(&tracer.spans(), &tracer.counters());
    std::fs::write(out_path, &json).expect("write trace file");
    println!("Chrome trace written to {out_path} ({} bytes)", json.len());
    validate_trace_json(&json);
}

/// Checks the exported document: it must parse as JSON and hold at least
/// one complete (`"ph":"X"`) span event. The offline stub of serde_json
/// cannot parse anything; there the parse step is skipped with a note and
/// CI re-validates against the real crate.
fn validate_trace_json(json: &str) {
    let complete = json.matches("\"ph\":\"X\"").count();
    if complete == 0 {
        eprintln!("error: exported trace holds no complete ('X') span events");
        std::process::exit(1);
    }
    if !json.starts_with('[') || !json.trim_end().ends_with(']') {
        eprintln!("error: exported trace is not a trace_event array");
        std::process::exit(1);
    }
    if serde_json::from_str::<serde_json::Value>("[]").is_err() {
        println!("note: serde_json stub in use; JSON parse validation deferred to CI");
        return;
    }
    if let Err(e) = serde_json::from_str::<serde_json::Value>(json) {
        eprintln!("error: exported trace is not valid JSON: {e}");
        std::process::exit(1);
    }
    println!("trace JSON validated: {complete} complete span events");
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_study_trace.json".to_string());
    machine_sweep();
    serve_trace(&out_path);
    println!("trace study passed: all breakdowns reconcile within 1%");
}
