//! Regenerates Fig. 1 (roofline points).
fn main() {
    println!("{}", ecssd_bench::fig01_roofline::run());
}
