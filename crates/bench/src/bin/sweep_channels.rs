//! Runs the channel-count device-class sweep.
use ecssd_bench::experiments::common::Window;
fn main() {
    let reports = ecssd_bench::sweep_channels::run(Window::standard());
    print!("{}", ecssd_bench::sweep_channels::render(&reports));
}
