//! Runs the open-loop serving-latency study.
fn main() {
    println!("{}", ecssd_bench::latency_study::run());
}
