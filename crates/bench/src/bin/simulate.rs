//! `simulate` — run one ECSSD design point from the command line.
//!
//! ```text
//! cargo run --release -p ecssd-bench --bin simulate -- \
//!     --benchmark Transformer-W268K --interleaving learned \
//!     --placement hetero --mac af --ratio 0.1 --batch 16 \
//!     --queries 2 --tiles 64 [--json]
//! ```
//!
//! Every flag has a paper-default; `--help` lists them.

use ecssd_core::{DataPlacement, EcssdConfig, EcssdMachine, MachineVariant};
use ecssd_float::MacCircuit;
use ecssd_layout::InterleavingStrategy;
use ecssd_workloads::{Benchmark, SampledWorkload, TraceConfig};

const HELP: &str = "\
simulate — run one ECSSD design point

options (all optional):
  --benchmark <abbrev>     Table-3 benchmark (default Transformer-W268K)
  --interleaving <s>       sequential | uniform | learned (default learned)
  --placement <p>          hetero | homog (default hetero)
  --mac <m>                naive | skhynix | af (default af)
  --ratio <f>              candidate ratio in (0,1] (default 0.1)
  --batch <n>              inference batch (default 16)
  --tile-rows <n>          weight rows per tile (default 512)
  --queries <n>            query batches to simulate (default 2)
  --tiles <n>              tiles per query (default 64)
  --json                   emit the RunReport as JSON
  --help                   this text
";

struct Args {
    benchmark: String,
    interleaving: String,
    placement: String,
    mac: String,
    ratio: f64,
    batch: usize,
    tile_rows: usize,
    queries: usize,
    tiles: usize,
    json: bool,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            benchmark: "Transformer-W268K".into(),
            interleaving: "learned".into(),
            placement: "hetero".into(),
            mac: "af".into(),
            ratio: 0.1,
            batch: 16,
            tile_rows: 512,
            queries: 2,
            tiles: 64,
            json: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--benchmark" => args.benchmark = value("--benchmark")?,
                "--interleaving" => args.interleaving = value("--interleaving")?,
                "--placement" => args.placement = value("--placement")?,
                "--mac" => args.mac = value("--mac")?,
                "--ratio" => {
                    args.ratio = value("--ratio")?
                        .parse()
                        .map_err(|e| format!("--ratio: {e}"))?;
                }
                "--batch" => {
                    args.batch = value("--batch")?
                        .parse()
                        .map_err(|e| format!("--batch: {e}"))?;
                }
                "--tile-rows" => {
                    args.tile_rows = value("--tile-rows")?
                        .parse()
                        .map_err(|e| format!("--tile-rows: {e}"))?;
                }
                "--queries" => {
                    args.queries = value("--queries")?
                        .parse()
                        .map_err(|e| format!("--queries: {e}"))?;
                }
                "--tiles" => {
                    args.tiles = value("--tiles")?
                        .parse()
                        .map_err(|e| format!("--tiles: {e}"))?;
                }
                "--json" => args.json = true,
                "--help" | "-h" => {
                    print!("{HELP}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }
}

fn main() {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    let Some(bench) = Benchmark::by_abbrev(&args.benchmark) else {
        eprintln!(
            "error: unknown benchmark {:?}; known: {}",
            args.benchmark,
            Benchmark::suite()
                .iter()
                .map(|b| b.abbrev)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };
    let interleaving = match args.interleaving.as_str() {
        "sequential" => InterleavingStrategy::Sequential,
        "uniform" => InterleavingStrategy::Uniform,
        "learned" => InterleavingStrategy::Learned(Default::default()),
        other => {
            eprintln!("error: unknown interleaving {other:?}");
            std::process::exit(2);
        }
    };
    let placement = match args.placement.as_str() {
        "hetero" => DataPlacement::Heterogeneous,
        "homog" => DataPlacement::Homogeneous,
        other => {
            eprintln!("error: unknown placement {other:?}");
            std::process::exit(2);
        }
    };
    let mac = match args.mac.as_str() {
        "naive" => MacCircuit::Naive,
        "skhynix" => MacCircuit::SkHynix,
        "af" => MacCircuit::AlignmentFree,
        other => {
            eprintln!("error: unknown mac {other:?}");
            std::process::exit(2);
        }
    };

    let config = match EcssdConfig::builder().batch(args.batch).build() {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    let trace = TraceConfig::paper_default()
        .with_candidate_ratio(args.ratio)
        .with_tile_rows(args.tile_rows);
    let variant = MachineVariant {
        mac,
        placement,
        interleaving,
        ..MachineVariant::paper_ecssd()
    };
    let workload = SampledWorkload::new(bench, trace);
    let mut machine =
        EcssdMachine::new(config, variant, Box::new(workload)).expect("screener fits DRAM");
    let report = machine
        .run_window(args.queries, args.tiles)
        .expect("fault-free run");

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
        return;
    }
    println!("benchmark            {}", bench.abbrev);
    println!(
        "design point         {} / {} / {} (batch {}, ratio {:.0}%, {}-row tiles)",
        mac.label(),
        args.placement,
        interleaving.label(),
        args.batch,
        args.ratio * 100.0,
        args.tile_rows
    );
    println!(
        "window               {} queries x {} tiles",
        report.queries, report.tiles_simulated
    );
    println!("ns/query (window)    {:.0}", report.ns_per_query());
    println!(
        "ns/query (full)      {:.0}  ({:.3} s over {} tiles)",
        report.ns_per_query_full(),
        report.ns_per_query_full() / 1e9,
        report.tiles_total
    );
    println!(
        "FP channel util      {:.1}%   balance {:.2}",
        report.fp_channel_utilization * 100.0,
        report.fp_imbalance().balance()
    );
    println!("candidate rows       {}", report.candidate_rows);
}
