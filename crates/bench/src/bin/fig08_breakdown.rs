//! Regenerates Fig. 8 (technique breakdown).
use ecssd_bench::experiments::common::Window;
fn main() {
    println!("{}", ecssd_bench::fig08_breakdown::run(Window::standard()));
}
