//! Fig. 8 companion: the technique breakdown per benchmark rather than
//! averaged, showing where each technique matters most (the alignment-free
//! MAC on compute-heavy D=1024 models, the layout techniques on the
//! page-bound D=512 models).

use ecssd_bench::experiments::common::{run_point, Window};
use ecssd_bench::fig08_breakdown::variants;
use ecssd_bench::table::TextTable;
use ecssd_workloads::{Benchmark, TraceConfig};

fn main() {
    let window = Window::standard();
    let trace = TraceConfig::paper_default();
    let mut t = TextTable::new([
        "benchmark",
        "baseline",
        "+uniform",
        "+AF MAC",
        "+hetero",
        "+learned",
        "total",
    ]);
    for bench in Benchmark::suite() {
        let times: Vec<f64> = variants()
            .into_iter()
            .map(|(_, variant, _, _)| run_point(bench, variant, trace, window).ns_per_query())
            .collect();
        let mut row = vec![bench.abbrev.to_string(), "1.00x".to_string()];
        row.extend(
            times[1..]
                .iter()
                .map(|&ns| format!("{:.2}x", times[0] / ns)),
        );
        row.push(format!("{:.2}x", times[0] / times[4]));
        t.row(row);
    }
    println!("Fig. 8 detail — cumulative speedup vs the per-benchmark baseline\n");
    println!("{t}");
}
