//! Runs every experiment of the ECSSD reproduction and writes both a
//! human-readable transcript (stdout) and a machine-readable JSON summary
//! (`reproduce_results.json` in the working directory).

use ecssd_bench::experiments::common::Window;
use serde_json::json;

fn main() {
    let window = Window::standard();

    println!("================ ECSSD reproduction — full experiment sweep ================\n");

    let t02 = ecssd_bench::table02_config::run();
    println!("{t02}\n");
    let t03 = ecssd_bench::table03_benchmarks::run();
    println!("{t03}\n");
    let t04 = ecssd_bench::table04_area_power::run();
    println!("{t04}\n");
    let f01 = ecssd_bench::fig01_roofline::run();
    println!("{f01}\n");
    let s42 = ecssd_bench::sec42_alignment_free::run();
    println!("{s42}\n");
    let f09 = ecssd_bench::fig09_mac::run();
    println!("{f09}\n");
    let f08 = ecssd_bench::fig08_breakdown::run(window);
    println!("{f08}\n");
    let f10 = ecssd_bench::fig10_hetero::run(window);
    println!("{f10}\n");
    let f11 = ecssd_bench::fig11_access::run();
    println!("{f11}\n");
    let f12 = ecssd_bench::fig12_interleaving::run(window);
    println!("{f12}\n");
    let f13 = ecssd_bench::fig13_end_to_end::run(window);
    println!("{f13}\n");
    let s71 = ecssd_bench::sec71_scalability::run();
    println!("{s71}\n");
    let s72 = ecssd_bench::sec72_gpu::run();
    println!("{s72}\n");
    let s73 = ecssd_bench::sec73_enmc::run();
    println!("{s73}\n");
    let sweep = ecssd_bench::sweep_compensation::run();
    println!("{sweep}\n");
    let energy = ecssd_bench::energy_report::run(window);
    println!("{energy}\n");
    let abl = ecssd_bench::ablations::run(window);
    println!("{abl}");
    let latency = ecssd_bench::latency_study::run();
    println!("{latency}\n");
    let faults = ecssd_bench::fault_study::run(window);
    print!("{}", ecssd_bench::fault_study::render(&faults));
    println!();

    let summary = json!({
        "table02": t02,
        "table03": t03,
        "table04": t04,
        "fig01": f01,
        "sec42": s42,
        "fig08": f08,
        "fig09": f09,
        "fig10": f10,
        "fig11": f11,
        "fig12": f12,
        "fig13": f13,
        "sec71": s71,
        "sec72": s72,
        "sec73": s73,
        "sweep_compensation": sweep,
        "energy": energy,
        "ablations": abl,
        "latency": latency,
        "fault_study": faults,
    });
    let path = "reproduce_results.json";
    match std::fs::write(
        path,
        serde_json::to_string_pretty(&summary).expect("serializable"),
    ) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
