//! Crash-consistency and self-healing study.
//!
//! Sweeps the three robustness axes introduced with the metadata journal:
//!
//! 1. **Crash instants × journal cadence** — for each group-commit cadence
//!    the same journaled device is rebuilt deterministically, power is cut
//!    at seeded instants across the whole journal, and recovery must
//!    replay to a consistent FTL with **zero committed rows lost** at
//!    every instant (a durable commit group is atomic: it either replays
//!    whole or was never flushed).
//! 2. **Unjournaled crash** — the same workload without a journal falls
//!    back to the armed snapshot and pays for it in lost commits and a
//!    full-device recovery scan; the study prints the loss the journal
//!    prevents.
//! 3. **Scrub interval** — a latent-UECC plan seeds retention faults, and
//!    background patrol passes of varying width must find and repair every
//!    one via RAID-5 peers; patrol cost is compared against a clean
//!    device.
//! 4. **Fleet recovery** — the sharded [`ServeEngine`] crashes on a batch
//!    boundary, every shard replays its own journal, and the fleet
//!    converges on one epoch never ahead of the last journaled commit,
//!    with zero mixed-version batches after resume.
//!
//! Any violated invariant exits 1; the last line on success is
//! `crash study passed`.

use ecssd_core::prelude::*;
use ecssd_core::UpdateBatch;
use ecssd_serve::ServeEngine;
use ecssd_ssd::{FaultPlan, JournalConfig, PowerLossInjector};

const ROWS: usize = 96;
const COLS: usize = 32;
const COMMIT_ROUNDS: usize = 4;
const CRASH_INSTANTS: u64 = 4;
const CADENCES: [usize; 3] = [1, 8, 32];
const SEED: u64 = 0x5eed_c4a5;

fn fail(what: &str) -> ! {
    eprintln!("error: {what}");
    std::process::exit(1);
}

fn query(phase: f32) -> Vec<f32> {
    (0..COLS)
        .map(|i| ((i as f32) * 0.17 + phase).sin())
        .collect()
}

fn queries() -> Vec<Vec<f32>> {
    (0..4).map(|q| query(q as f32 * 0.7)).collect()
}

fn fresh_row(seed: f32) -> Vec<f32> {
    (0..COLS)
        .map(|i| ((i as f32) * 0.29 + seed).cos())
        .collect()
}

/// Deterministically rebuilds the same journaled device: deploy, then
/// `COMMIT_ROUNDS` committed update epochs with queries interleaved.
/// Every rebuild reaches the identical journal append count, so a crash
/// instant in append coordinates replays exactly.
fn journaled_device(group_commit: usize) -> Ecssd {
    let mut dev = Ecssd::new(EcssdConfig::tiny());
    dev.enable();
    dev.weight_deploy(&DenseMatrix::random(ROWS, COLS, 33))
        .expect("deploy fits the tiny device");
    dev.enable_journal(JournalConfig {
        group_commit,
        ..JournalConfig::default()
    });
    for round in 0..COMMIT_ROUNDS {
        let targets = [round + 1, 30 + round, 80];
        let mut batch = UpdateBatch::new(COLS);
        for (i, &r) in targets.iter().enumerate() {
            batch = batch
                .replace(r, fresh_row(i as f32 + round as f32))
                .expect("row in range");
        }
        dev.stage_update(&batch).expect("staging fits");
        dev.commit_update().expect("commit applies");
        dev.classify_batch(&queries(), 4).expect("serving works");
    }
    dev
}

/// §1: journaled crash sweep — cadence × instant, zero rows lost always.
fn crash_sweep() {
    let injector = PowerLossInjector::new(SEED);
    for cadence in CADENCES {
        let reference = journaled_device(cadence);
        let appended = reference.journal_appended().expect("journal is enabled");
        let epoch_before = reference.epoch();
        for i in 0..CRASH_INSTANTS {
            let k = injector.crash_point(i, appended);
            let mut dev = journaled_device(cadence);
            dev.power_cut(Some(k));
            let outcome = match dev.recover() {
                Ok(o) => o,
                Err(e) => fail(&format!("cadence {cadence} instant {k}: {e}")),
            };
            if outcome.rows_lost != 0 {
                fail(&format!(
                    "cadence {cadence} instant {k}: journaled recovery lost \
                     {} committed rows",
                    outcome.rows_lost
                ));
            }
            if !outcome.mapping_consistent {
                fail(&format!("cadence {cadence} instant {k}: inconsistent FTL"));
            }
            if outcome.recovered_epoch > epoch_before {
                fail(&format!(
                    "cadence {cadence} instant {k}: recovered epoch {} is \
                     ahead of the crash ({epoch_before})",
                    outcome.recovered_epoch
                ));
            }
            dev.classify_batch(&queries(), 4)
                .expect("recovered device serves");
            println!(
                "crash cadence={cadence} instant={i} k={k} appended={appended} \
                 epoch={}/{epoch_before} replayed={} recovery_us={} rows_lost={}",
                outcome.recovered_epoch,
                outcome.replayed_records,
                outcome.recovery_ns / 1_000,
                outcome.rows_lost,
            );
        }
    }
}

/// §2: the same workload without a journal — quantify what it loses.
fn unjournaled_loss() {
    let mut dev = Ecssd::new(EcssdConfig::tiny());
    dev.enable();
    dev.weight_deploy(&DenseMatrix::random(ROWS, COLS, 33))
        .expect("deploy fits the tiny device");
    dev.arm_crash_snapshot();
    for round in 0..COMMIT_ROUNDS {
        let batch = UpdateBatch::new(COLS)
            .replace(round + 1, fresh_row(round as f32))
            .expect("row in range");
        dev.stage_update(&batch).expect("staging fits");
        dev.commit_update().expect("commit applies");
    }
    dev.power_cut(None);
    let outcome = dev.recover().expect("snapshot fallback recovers");
    if outcome.rows_lost == 0 {
        fail("unjournaled crash lost nothing — the journal study is vacuous");
    }
    if !outcome.mapping_consistent {
        fail("snapshot fallback left an inconsistent FTL");
    }
    println!(
        "unjournaled rows_lost={} epochs_lost={} scan_us={}",
        outcome.rows_lost,
        outcome.epoch_before_crash - outcome.recovered_epoch,
        outcome.recovery_ns / 1_000,
    );
}

/// One full patrol of the device in `interval`-page slices; returns the
/// merged report.
fn patrol(dev: &mut Ecssd, interval: u64) -> (u64, ecssd_ssd::ScrubReport) {
    let logical = dev.device().ftl().logical_pages();
    let mut merged = ecssd_ssd::ScrubReport::default();
    let mut passes = 0u64;
    let mut covered = 0u64;
    while covered < logical {
        let slice = interval.min(logical - covered);
        merged.merge(&dev.scrub_pass(slice));
        covered += slice;
        passes += 1;
    }
    (passes, merged)
}

/// §3: background scrubbing — latent faults repaired at every interval.
fn scrub_sweep() {
    for interval in [128u64, 256, 1024] {
        // Patrol cost baseline at this interval: a clean device (no
        // latent plan) pays for the patrol reads but never for repairs.
        let mut clean = Ecssd::new(EcssdConfig::tiny());
        clean.enable();
        clean
            .weight_deploy(&DenseMatrix::random(ROWS, COLS, 33))
            .expect("deploy fits the tiny device");
        let (_, clean_report) = patrol(&mut clean, interval);

        let mut dev = Ecssd::new(EcssdConfig::tiny());
        dev.enable();
        dev.weight_deploy(&DenseMatrix::random(ROWS, COLS, 33))
            .expect("deploy fits the tiny device");
        dev.device_mut()
            .flash_mut()
            .set_fault_plan(FaultPlan::with_seed(17).with_latent_uecc(0.03));
        let (passes, first) = patrol(&mut dev, interval);
        if first.latent_found == 0 {
            fail("latent plan seeded no faults — scrub sweep is vacuous");
        }
        if first.repair_programs != first.latent_found {
            fail(&format!(
                "scrub interval {interval}: found {} latent pages but \
                 repaired {}",
                first.latent_found, first.repair_programs
            ));
        }
        let (_, second) = patrol(&mut dev, interval);
        if second.latent_found != 0 {
            fail(&format!(
                "scrub interval {interval}: {} latent pages survived a full \
                 repair patrol",
                second.latent_found
            ));
        }
        if first.scrub_ns < clean_report.scrub_ns {
            fail("repair patrol must cost at least a clean patrol");
        }
        dev.classify_batch(&queries(), 4)
            .expect("scrubbed device serves");
        println!(
            "scrub interval={interval} passes={passes} latent_found={} \
             peer_reads={} repairs={} patrol_us={} clean_patrol_us={}",
            first.latent_found,
            first.peer_reads,
            first.repair_programs,
            first.scrub_ns / 1_000,
            clean_report.scrub_ns / 1_000,
        );
    }
}

/// §4: sharded fleet crash-and-recover on a batch boundary.
fn fleet_recovery() {
    let config = EcssdConfig::tiny_builder()
        .build()
        .expect("valid tiny config");
    let mut eng = ServeEngine::builder(config)
        .shards(2)
        .build()
        .expect("engine spawns");
    eng.deploy(&DenseMatrix::random(300, COLS, 41))
        .expect("deploy fits");
    eng.enable_journal(JournalConfig {
        group_commit: 4,
        ..JournalConfig::default()
    })
    .expect("journal enables fleet-wide");
    for round in 0..2usize {
        eng.classify_batch(&queries(), 4).expect("fleet serves");
        let batch = UpdateBatch::new(COLS)
            .replace(7 + round, fresh_row(round as f32))
            .expect("row in range");
        eng.stage_update(&batch).expect("staging fits");
        eng.commit_update().expect("commit applies");
    }
    let epoch_before = eng.epoch();
    let summary = eng.crash_and_recover(None).expect("fleet recovers");
    if summary.epoch_after > epoch_before {
        fail("fleet recovered ahead of the last journaled commit");
    }
    if summary.rows_lost != 0 {
        fail("journaled fleet recovery lost committed rows");
    }
    if !summary.shards_consistent {
        fail("a shard recovered an inconsistent FTL");
    }
    eng.classify_batch(&queries(), 4)
        .expect("recovered fleet serves");
    let report = eng.report();
    if report.mixed_version_batches != 0 {
        fail("recovery produced a mixed-version batch");
    }
    println!(
        "fleet shards=2 epoch={}/{} replayed={} recovery_us_max={} \
         rolled_back={} rows_lost={}",
        summary.epoch_after,
        epoch_before,
        summary.replayed_records,
        summary.recovery_ns_max / 1_000,
        summary.rolled_back_shards,
        summary.rows_lost,
    );
}

fn main() {
    crash_sweep();
    unjournaled_loss();
    scrub_sweep();
    fleet_recovery();
    println!("crash study passed");
}
