//! Minimal fixed-width table printer for harness output.

/// A simple left-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders a horizontal ASCII bar of `value` against `max`, `width` cells
/// wide — used by the figure harnesses to sketch the paper's bar charts in
/// terminal output.
pub fn ascii_bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 || width == 0 {
        return String::new();
    }
    let cells = ((value / max) * width as f64).round() as usize;
    "#".repeat(cells.clamp(1, width))
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "22222"]);
        let s = t.render();
        assert!(s.contains("alpha"));
        assert!(s.lines().count() == 4);
        // All data lines have the same prefix width up to the second column.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].find('1'), lines[3].find('2'));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn bars_scale_and_clamp() {
        assert_eq!(ascii_bar(5.0, 10.0, 10), "#####");
        assert_eq!(ascii_bar(10.0, 10.0, 4), "####");
        assert_eq!(
            ascii_bar(0.01, 10.0, 10),
            "#",
            "nonzero shows at least one cell"
        );
        assert_eq!(ascii_bar(0.0, 10.0, 10), "");
        assert_eq!(ascii_bar(1.0, 0.0, 10), "");
    }
}
