//! Experiment harness for the ECSSD reproduction.
//!
//! Every table and figure of the paper's evaluation (§6) and discussion
//! (§7) has a module here that regenerates its rows/series, and a matching
//! binary under `src/bin/`. `cargo run -p ecssd-bench --bin reproduce`
//! runs the full set and emits a machine-readable summary next to the
//! human-readable tables.
//!
//! The modules return plain result structs so integration tests can assert
//! on the numbers and EXPERIMENTS.md can record paper-vs-measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::*;
