//! Criterion micro-benchmarks of the hot DES kernels tracked by the
//! `BENCH_*.json` perf trajectory (see `docs/perf.md`):
//!
//! - the INT4 screening GEMV (`Int4Matrix::matvec` / `Int4Vector::dot`),
//! - the FP32 dense matvec feeding the JL projector,
//! - flash timeline advancement (`FlashSim::read_batch_checked`) at both
//!   the small per-tile batch size the pipeline actually issues and a
//!   large saturating batch.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecssd_screen::{DenseMatrix, Int4Matrix, Int4Vector};
use ecssd_ssd::{FlashSim, FlashTiming, PhysPageAddr, SimTime, SsdGeometry};

fn bench_int4_gemv(c: &mut Criterion) {
    let weights = DenseMatrix::random(4096, 128, 7);
    let m = Int4Matrix::quantize(&weights);
    let x: Vec<f32> = (0..128).map(|i| ((i as f32) * 0.37).sin()).collect();
    let xq = Int4Vector::quantize(&x).unwrap();
    let mut g = c.benchmark_group("int4_gemv");
    g.bench_function("matvec_l4096_d128", |b| {
        b.iter(|| m.matvec(black_box(&xq)).unwrap())
    });
    let long: Vec<f32> = (0..4096).map(|i| ((i as f32) * 0.11).cos()).collect();
    let a = Int4Vector::quantize(&long).unwrap();
    let bb = Int4Vector::quantize(&long[..]).unwrap();
    g.bench_function("dot_d4096", |b| b.iter(|| a.dot(black_box(&bb)).unwrap()));
    g.finish();
}

fn bench_fp32_matvec(c: &mut Criterion) {
    let m = DenseMatrix::random(4096, 128, 11);
    let x: Vec<f32> = (0..128).map(|i| ((i as f32) * 0.29).sin()).collect();
    c.bench_function("fp32_matvec_l4096_d128", |b| {
        b.iter(|| m.matvec(black_box(&x)).unwrap())
    });
}

fn page_addrs(n: u64) -> Vec<PhysPageAddr> {
    (0..n)
        .map(|i| PhysPageAddr {
            channel: (i % 8) as usize,
            die: ((i / 8) % 8) as usize,
            plane: (i % 4) as usize,
            block: (i % 64) as usize,
            page: (i % 2048) as usize,
        })
        .collect()
}

fn bench_flash_timeline(c: &mut Criterion) {
    let geometry = SsdGeometry::paper_default();
    let mut g = c.benchmark_group("flash_timeline");
    // The pipeline's per-tile fetch issues small batches (a few pages per
    // candidate row); the per-call constant factors dominate here.
    let small = page_addrs(32);
    g.bench_function("read_batch_checked_32", |b| {
        let mut flash = FlashSim::new(geometry, FlashTiming::paper_default());
        b.iter(|| flash.read_batch_checked(black_box(&small), SimTime::ZERO, SimTime::ZERO))
    });
    let large = page_addrs(512);
    g.bench_function("read_batch_checked_512", |b| {
        let mut flash = FlashSim::new(geometry, FlashTiming::paper_default());
        b.iter(|| flash.read_batch_checked(black_box(&large), SimTime::ZERO, SimTime::ZERO))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_int4_gemv, bench_fp32_matvec, bench_flash_timeline
}
criterion_main!(benches);
