//! Criterion micro-benchmarks of the SSD simulator substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecssd_ssd::{AllocationPolicy, FlashSim, FlashTiming, Ftl, PhysPageAddr, SimTime, SsdGeometry};

fn bench_flash_batch(c: &mut Criterion) {
    let geometry = SsdGeometry::paper_default();
    let addrs: Vec<PhysPageAddr> = (0..512u64)
        .map(|i| PhysPageAddr {
            channel: (i % 8) as usize,
            die: ((i / 8) % 8) as usize,
            plane: 0,
            block: (i % 64) as usize,
            page: (i % 2048) as usize,
        })
        .collect();
    c.bench_function("flash_read_batch_512", |b| {
        b.iter(|| {
            let mut flash = FlashSim::new(geometry, FlashTiming::paper_default());
            flash.read_batch(black_box(&addrs), SimTime::ZERO)
        })
    });
}

fn bench_ftl_writes(c: &mut Criterion) {
    // The tiny geometry exports 1536 logical pages at 25% overprovisioning.
    c.bench_function("ftl_write_1500_lpns", |b| {
        b.iter(|| {
            let mut ftl = Ftl::new(SsdGeometry::tiny(), AllocationPolicy::Striped, 0.25);
            for lpn in 0..1500u64 {
                ftl.write(black_box(lpn)).unwrap();
            }
            ftl.mapped_pages()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_flash_batch, bench_ftl_writes
}
criterion_main!(benches);
