//! Criterion micro-benchmarks of the approximate screening pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecssd_screen::{DenseMatrix, ScreenerConfig, ScreeningPipeline};

fn bench_screening(c: &mut Criterion) {
    let weights = DenseMatrix::random(4096, 256, 7);
    let pipeline = ScreeningPipeline::new(&weights, ScreenerConfig::paper_default()).unwrap();
    let x: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.21).sin()).collect();
    let mut g = c.benchmark_group("screening_l4096_d256");
    g.bench_function("infer_top10", |b| {
        b.iter(|| pipeline.infer(black_box(&x), 10).unwrap())
    });
    g.bench_function("screen_only", |b| {
        b.iter(|| {
            pipeline
                .screener()
                .screen(black_box(&x), pipeline.config().threshold)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_build(c: &mut Criterion) {
    let weights = DenseMatrix::random(2048, 256, 9);
    c.bench_function("pipeline_build_l2048_d256", |b| {
        b.iter(|| {
            ScreeningPipeline::new(black_box(&weights), ScreenerConfig::paper_default()).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_screening, bench_build
}
criterion_main!(benches);
