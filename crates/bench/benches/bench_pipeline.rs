//! Criterion micro-benchmarks of the full ECSSD pipeline simulation: how
//! many simulated tiles per second the model itself sustains.

use criterion::{criterion_group, criterion_main, Criterion};
use ecssd_core::{EcssdConfig, EcssdMachine, MachineVariant};
use ecssd_workloads::{Benchmark, SampledWorkload, TraceConfig};

fn bench_machine_window(c: &mut Criterion) {
    let bench = Benchmark::by_abbrev("Transformer-W268K").unwrap();
    c.bench_function("ecssd_machine_2q_16tiles", |b| {
        b.iter(|| {
            let workload = SampledWorkload::new(bench, TraceConfig::paper_default());
            let mut machine = EcssdMachine::new(
                EcssdConfig::paper_default(),
                MachineVariant::paper_ecssd(),
                Box::new(workload),
            )
            .expect("screener fits DRAM");
            machine.run_window(2, 16).expect("fault-free run")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_machine_window
}
criterion_main!(benches);
