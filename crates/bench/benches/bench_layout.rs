//! Criterion micro-benchmarks of the layout framework and trace sampling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecssd_layout::InterleavingStrategy;
use ecssd_workloads::{Benchmark, CandidateSource, SampledWorkload, TraceConfig};

fn bench_assignment(c: &mut Criterion) {
    let predicted: Vec<f32> = (0..512)
        .map(|i| (((i * 2654435761usize) % 1000) as f32) * 0.1)
        .collect();
    let freq: Vec<u32> = (0..512).map(|i| (i % 24) as u32).collect();
    let mut g = c.benchmark_group("assign_tile_512");
    for strategy in [
        InterleavingStrategy::Sequential,
        InterleavingStrategy::Uniform,
        InterleavingStrategy::Learned(Default::default()),
    ] {
        g.bench_function(strategy.label(), |b| {
            b.iter(|| strategy.assign_tile(0, 64, 0, black_box(&predicted), Some(&freq), 8))
        });
    }
    g.finish();
}

fn bench_trace_sampling(c: &mut Criterion) {
    let bench = Benchmark::by_abbrev("XMLCNN-S100M").unwrap();
    let mut w = SampledWorkload::new(bench, TraceConfig::paper_default());
    c.bench_function("sample_candidates_100m_tile", |b| {
        let mut q = 0usize;
        b.iter(|| {
            q += 1;
            w.candidates(black_box(q), 123_456)
        })
    });
    c.bench_function("predicted_hotness_tile", |b| {
        b.iter(|| w.predicted_hotness(black_box(7)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_assignment, bench_trace_sampling
}
criterion_main!(benches);
