//! Criterion micro-benchmarks of the CFP32 numerics: pre-alignment and the
//! three MAC-organization dot-product models.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ecssd_float::{alignment_free_dot, naive_fp32_dot, skhynix_dot, Cfp32Vector};

fn vectors(n: usize) -> (Vec<f32>, Vec<f32>) {
    let x: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.37).sin() * 1.3).collect();
    let w: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.11).cos() * 0.7).collect();
    (x, w)
}

fn bench_prealign(c: &mut Criterion) {
    let mut g = c.benchmark_group("prealign");
    for n in [256usize, 1024, 4096] {
        let (x, _) = vectors(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| Cfp32Vector::from_f32(black_box(x)).unwrap())
        });
    }
    g.finish();
}

fn bench_dot_products(c: &mut Criterion) {
    let n = 1024;
    let (x, w) = vectors(n);
    let xa = Cfp32Vector::from_f32(&x).unwrap();
    let wa = Cfp32Vector::from_f32(&w).unwrap();
    let mut g = c.benchmark_group("dot1024");
    g.bench_function("naive_fp32", |b| {
        b.iter(|| naive_fp32_dot(black_box(&x), black_box(&w)))
    });
    g.bench_function("skhynix", |b| {
        b.iter(|| skhynix_dot(black_box(&x), black_box(&w)))
    });
    g.bench_function("alignment_free", |b| {
        b.iter(|| alignment_free_dot(black_box(&xa), black_box(&wa)).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_prealign, bench_dot_products
}
criterion_main!(benches);
