//! Deterministic parallel execution of independent shard simulations.
//!
//! Shard devices never share simulated resources between commit
//! boundaries, so their windows can run on parallel host threads without
//! changing a single simulated timestamp. Determinism comes from the merge
//! discipline, not from scheduling: results are collected in shard-index
//! order, so downstream merges see exactly the sequence the sequential
//! loop produced, byte for byte (asserted end-to-end by the
//! `parallel_determinism` tests).

/// Runs `f(i, &mut workers[i])` for every worker and returns the results
/// in worker-index order.
///
/// With `parallel` false (or fewer than two workers) this is the plain
/// sequential loop, short-circuiting on the first error exactly like the
/// code it replaced. With `parallel` true, every worker runs on its own
/// scoped thread; all workers complete, and the lowest-indexed error (if
/// any) is reported. The success path is byte-identical either way — only
/// the error path differs, in that later shards will have executed their
/// (independent) work before the error surfaces.
///
/// A worker panic propagates to the caller after the remaining threads
/// finish (scoped threads join on scope exit).
pub(crate) fn run_shards<W, T, E, F>(workers: &mut [W], parallel: bool, f: F) -> Result<Vec<T>, E>
where
    W: Send,
    T: Send,
    E: Send,
    F: Fn(usize, &mut W) -> Result<T, E> + Sync,
{
    if !parallel || workers.len() < 2 {
        return workers
            .iter_mut()
            .enumerate()
            .map(|(i, w)| f(i, w))
            .collect();
    }
    let f = &f;
    let results: Vec<Result<T, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .iter_mut()
            .enumerate()
            .map(|(i, w)| scope.spawn(move || f(i, w)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_in_index_order() {
        let mut a: Vec<u64> = (0..8).collect();
        let mut b = a.clone();
        let seq: Vec<u64> =
            run_shards(&mut a, false, |i, w| Ok::<_, ()>(*w * 10 + i as u64)).unwrap();
        let par: Vec<u64> =
            run_shards(&mut b, true, |i, w| Ok::<_, ()>(*w * 10 + i as u64)).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, vec![0, 11, 22, 33, 44, 55, 66, 77]);
    }

    #[test]
    fn workers_are_mutated_in_place() {
        let mut workers = vec![1u64, 2, 3];
        run_shards(&mut workers, true, |_, w| {
            *w *= 2;
            Ok::<_, ()>(())
        })
        .unwrap();
        assert_eq!(workers, vec![2, 4, 6]);
    }

    #[test]
    fn parallel_reports_the_lowest_indexed_error() {
        let mut workers = vec![(); 4];
        let err = run_shards(
            &mut workers,
            true,
            |i, ()| {
                if i % 2 == 1 {
                    Err(i)
                } else {
                    Ok(i)
                }
            },
        )
        .unwrap_err();
        assert_eq!(err, 1);
    }
}
