//! Energy model of an ECSSD run.
//!
//! The paper reports 4.55 GFLOPS/W for ECSSD (§7.3), i.e. ~11 W for the
//! whole device while classifying at the accelerator's 50 GFLOPS. This
//! module breaks that power down into modeled components and integrates
//! them over a simulated run, so efficiency can be *measured* from the
//! pipeline rather than asserted.

use ecssd_float::AcceleratorEstimate;
use serde::{Deserialize, Serialize};

use crate::RunReport;

/// Component energy/power constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Always-on device power (controller, embedded processor, interfaces,
    /// DRAM refresh), watts.
    pub baseline_w: f64,
    /// Energy per 4 KB page read (array sense + bus transfer), µJ.
    pub flash_read_uj_per_page: f64,
    /// DRAM access energy, pJ per bit moved.
    pub dram_pj_per_bit: f64,
    /// Host link energy, pJ per bit moved.
    pub host_pj_per_bit: f64,
}

impl EnergyModel {
    /// Calibrated so that the full device lands near the paper's ~11 W
    /// operating point at ECSSD's steady state: ~4.7 W baseline, ~2.5 µJ
    /// per 4 KB page read (typical 3D-NAND sense + NVDDR3 transfer),
    /// 20 pJ/bit DRAM, 10 pJ/bit PCIe.
    pub fn paper_default() -> Self {
        EnergyModel {
            baseline_w: 4.7,
            flash_read_uj_per_page: 2.5,
            dram_pj_per_bit: 20.0,
            host_pj_per_bit: 10.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Integrated energy of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Baseline (always-on) energy, mJ.
    pub baseline_mj: f64,
    /// Inserted-accelerator energy, mJ.
    pub accelerator_mj: f64,
    /// Flash read energy, mJ.
    pub flash_mj: f64,
    /// Device-DRAM energy, mJ.
    pub dram_mj: f64,
    /// Mean power over the run, W.
    pub mean_power_w: f64,
    /// Achieved FP throughput over the run, GFLOPS.
    pub achieved_gflops: f64,
}

impl EnergyReport {
    /// Total energy, mJ.
    pub fn total_mj(&self) -> f64 {
        self.baseline_mj + self.accelerator_mj + self.flash_mj + self.dram_mj
    }

    /// Achieved energy efficiency, GFLOPS/W (§7.3 reports 4.55 for ECSSD).
    pub fn gflops_per_watt(&self) -> f64 {
        if self.mean_power_w == 0.0 {
            0.0
        } else {
            self.achieved_gflops / self.mean_power_w
        }
    }
}

impl EnergyModel {
    /// Integrates the model over a pipeline run.
    ///
    /// `accel` supplies the accelerator's power (Table 4); its FP32 and
    /// INT4 engines are charged for their busy time, the rest of the
    /// accelerator for the whole makespan.
    pub fn estimate(
        &self,
        run: &RunReport,
        accel: &AcceleratorEstimate,
        page_bytes: usize,
    ) -> EnergyReport {
        let seconds = run.makespan.as_ns() as f64 * 1e-9;
        let baseline_mj = self.baseline_w * seconds * 1e3;
        // Accelerator: engines at their busy time, control always on.
        let accel_mj = (accel.fp32.power_mw() * run.fp32_busy_ns as f64
            + accel.int4.power_mw() * run.int4_busy_ns as f64
            + (accel.comparator.power_mw() + accel.scheduler.power_mw())
                * run.makespan.as_ns() as f64)
            * 1e-9;
        let fp_bytes: u64 = run.fp_channel_bytes.iter().sum();
        let pages = fp_bytes as f64 / page_bytes as f64;
        let flash_mj = pages * self.flash_read_uj_per_page * 1e-3;
        let dram_bits = run.dram_busy_ns as f64 * 12.8 * 8.0; // bytes/ns × 8
        let dram_mj = dram_bits * self.dram_pj_per_bit * 1e-9;
        // Achieved FLOPs: the FP32 engine's executed operations per second.
        let achieved_gflops = if seconds > 0.0 {
            // fp32_busy_ns × rate is busy-time FLOPs; amortize over makespan.
            run.fp32_busy_ns as f64 / run.makespan.as_ns() as f64 * 51.2
        } else {
            0.0
        };
        let total_mj = baseline_mj + accel_mj + flash_mj + dram_mj;
        EnergyReport {
            baseline_mj,
            accelerator_mj: accel_mj,
            flash_mj,
            dram_mj,
            mean_power_w: if seconds > 0.0 {
                total_mj * 1e-3 / seconds
            } else {
                0.0
            },
            achieved_gflops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EcssdConfig, EcssdMachine, MachineVariant};
    use ecssd_float::AcceleratorEstimate;
    use ecssd_workloads::{Benchmark, SampledWorkload, TraceConfig};

    fn run_report() -> RunReport {
        let bench = Benchmark::by_abbrev("XMLCNN-S100M").unwrap();
        let w = SampledWorkload::new(bench, TraceConfig::paper_default());
        let mut m = EcssdMachine::new(
            EcssdConfig::paper_default(),
            MachineVariant::paper_ecssd(),
            Box::new(w),
        )
        .unwrap();
        m.run_window(2, 48).unwrap()
    }

    #[test]
    fn steady_state_power_is_near_11w() {
        let run = run_report();
        let report = EnergyModel::paper_default().estimate(
            &run,
            &AcceleratorEstimate::paper_default(),
            4096,
        );
        assert!(
            (8.0..14.0).contains(&report.mean_power_w),
            "power {} W",
            report.mean_power_w
        );
        // §7.3: 4.55 GFLOPS/W; we measure achieved (not peak) efficiency.
        let eff = report.gflops_per_watt();
        assert!((2.5..6.5).contains(&eff), "efficiency {eff} GFLOPS/W");
    }

    #[test]
    fn components_are_positive_and_sum() {
        let run = run_report();
        let r = EnergyModel::paper_default().estimate(
            &run,
            &AcceleratorEstimate::paper_default(),
            4096,
        );
        assert!(r.baseline_mj > 0.0);
        assert!(r.accelerator_mj > 0.0);
        assert!(r.flash_mj > 0.0);
        assert!(r.dram_mj > 0.0);
        let sum = r.baseline_mj + r.accelerator_mj + r.flash_mj + r.dram_mj;
        assert!((r.total_mj() - sum).abs() < 1e-12);
    }

    #[test]
    fn accelerator_is_a_tiny_share() {
        // The inserted logic is ~53 mW against a ~5 W device: its energy
        // share must be far below 5%.
        let run = run_report();
        let r = EnergyModel::paper_default().estimate(
            &run,
            &AcceleratorEstimate::paper_default(),
            4096,
        );
        assert!(r.accelerator_mj / r.total_mj() < 0.05);
    }
}
