//! Framework integration (§4.4): "the major Python-style APIs for ECSSD …
//! could be integrated with existing machine learning frameworks flexibly."
//!
//! [`ClassifierLayer`] is the Rust equivalent: a drop-in final-layer
//! interface that any model-serving stack can call per forward pass, hiding
//! the device workflow (mode switch, deployment, screening, classification,
//! result gathering) behind a batch-first `forward_batch` API.

use ecssd_screen::{DenseMatrix, Score, ThresholdPolicy};
use ecssd_ssd::SimTime;

use crate::{Ecssd, EcssdConfig, EcssdError};

/// A final classification layer served by an ECSSD device.
///
/// ```
/// use ecssd_core::{ClassifierLayer, EcssdConfig};
/// use ecssd_screen::DenseMatrix;
///
/// # fn main() -> Result<(), ecssd_core::EcssdError> {
/// let weights = DenseMatrix::random(512, 64, 9);
/// let mut layer = ClassifierLayer::deploy(EcssdConfig::tiny(), &weights, 0.1)?;
/// let features: Vec<f32> = (0..64).map(|i| (i as f32 * 0.2).sin()).collect();
/// let top = layer.forward_batch(&[features], 5)?;
/// assert_eq!(top[0].len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ClassifierLayer {
    device: Ecssd,
    categories: usize,
    hidden: usize,
}

impl ClassifierLayer {
    /// Deploys `weights` into a fresh device at `candidate_ratio`.
    ///
    /// # Errors
    ///
    /// Propagates deployment and configuration errors.
    pub fn deploy(
        config: EcssdConfig,
        weights: &DenseMatrix,
        candidate_ratio: f64,
    ) -> Result<Self, EcssdError> {
        let mut device = Ecssd::new(config);
        device.enable();
        device.weight_deploy(weights)?;
        device.filter_threshold(ThresholdPolicy::TopRatio(candidate_ratio))?;
        Ok(ClassifierLayer {
            device,
            categories: weights.rows(),
            hidden: weights.cols(),
        })
    }

    /// Category count `L`.
    pub fn categories(&self) -> usize {
        self.categories
    }

    /// Hidden dimension `D`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Batched forward pass: top-`k` per input, one device round trip.
    ///
    /// # Errors
    ///
    /// Propagates dimension and device errors.
    pub fn forward_batch(
        &mut self,
        inputs: &[Vec<f32>],
        k: usize,
    ) -> Result<Vec<Vec<Score>>, EcssdError> {
        self.device.classify_batch(inputs, k)
    }

    /// Simulated device time consumed so far.
    pub fn elapsed(&self) -> SimTime {
        self.device.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_batch_returns_ranked_topk() {
        let weights = DenseMatrix::random(400, 32, 4);
        let mut layer = ClassifierLayer::deploy(EcssdConfig::tiny(), &weights, 0.1).unwrap();
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.3).cos()).collect();
        let top = layer.forward_batch(&[x], 4).unwrap().remove(0);
        assert_eq!(top.len(), 4);
        assert!(top.windows(2).all(|p| p[0].value >= p[1].value));
        assert_eq!(layer.categories(), 400);
        assert_eq!(layer.hidden(), 32);
        assert!(layer.elapsed() > SimTime::ZERO);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let weights = DenseMatrix::random(100, 16, 2);
        let mut layer = ClassifierLayer::deploy(EcssdConfig::tiny(), &weights, 0.1).unwrap();
        assert!(layer.forward_batch(&[vec![0.0; 8]], 3).is_err());
    }
}
