//! Online model updates on the [`Ecssd`] device: stage → commit.
//!
//! An [`UpdateBatch`] is *staged* onto the serving device: version N+1's
//! weight rows are programmed into fresh LPNs through the FTL write path
//! (so program and GC traffic contend with version-N query reads on the
//! shared flash timelines), the touched stripes pay their RAID-5
//! read-modify-write, and the staged screener is re-quantized per the
//! device's [`RequantPolicy`]. Queries keep reading version N untouched
//! until [`Ecssd::commit_update`] atomically swaps the staged state in,
//! trims the superseded pages, and invalidates the touched rows in the
//! hot-row cache — the staleness barrier that makes a pre-update cached
//! row image unreachable.

use ecssd_layout::ParityScheme;
use ecssd_screen::{DenseMatrix, Screener};
use ecssd_ssd::{GcReport, PhysPageAddr, SimTime};
use ecssd_update::{
    ParityRefreshModel, RequantPolicy, ScaleDriftDetector, UpdateBatch, UpdateOp, UpdatePolicy,
    UpdateReport,
};

use crate::api::{Ecssd, EcssdError};

/// Version N+1 under construction while queries serve version N.
#[derive(Debug)]
pub(crate) struct StagedUpdate {
    /// Full weight matrix with the staged batches applied.
    pub(crate) weights: DenseMatrix,
    /// Screener with the touched rows re-quantized.
    pub(crate) screener: Screener,
    /// Per-row first LPNs of version N+1 (touched rows point at fresh
    /// pages; untouched rows share version N's pages).
    pub(crate) row_lpns: Vec<u64>,
    /// Global row ids the batches touched (cache invalidation at commit).
    pub(crate) touched_rows: Vec<u64>,
    /// LPNs superseded by the batches, trimmed + recycled at commit.
    pub(crate) freed_lpns: Vec<u64>,
    /// Fresh LPNs holding version N+1's rows, trimmed on abort.
    pub(crate) staged_lpns: Vec<u64>,
    /// Accounting over every batch staged into this version.
    pub(crate) report: UpdateReport,
}

impl Ecssd {
    /// Sets the screener re-quantization policy for subsequent updates and
    /// re-baselines the scale-drift detector.
    pub fn set_update_policy(&mut self, policy: UpdatePolicy) {
        self.update_policy = policy;
        self.drift = ScaleDriftDetector::new(match policy.requant {
            RequantPolicy::InPlace { max_drift } => max_drift,
            RequantPolicy::Exact => 2.0, // inert: Exact never observes drift
        });
    }

    /// The active update policy.
    pub fn update_policy(&self) -> UpdatePolicy {
        self.update_policy
    }

    /// Deployment version queries currently read (0 = nothing deployed;
    /// each `weight_deploy` or committed update bumps it).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether a staged (uncommitted) version N+1 exists.
    pub fn has_staged_update(&self) -> bool {
        self.staged.is_some()
    }

    /// Takes an LPN for an update write: superseded pages recycle before
    /// the never-used tail grows.
    fn take_lpn(&mut self) -> u64 {
        if let Some(lpn) = self.free_lpns.pop() {
            return lpn;
        }
        let lpn = self.next_lpn;
        self.next_lpn += 1;
        lpn
    }

    /// Stages an update batch into version N+1 (repeatable: further
    /// batches stack onto the staged version until commit). Queries
    /// continue to read version N, but the staging writes — data
    /// programs, GC relocations, parity read-modify-write — share the
    /// flash timing model with them, which is exactly the read/write
    /// interference the update study measures.
    ///
    /// # Errors
    ///
    /// Fails outside accelerator mode, before deployment, or when the
    /// batch does not fit the staged model. On error the whole staged
    /// version is dropped (as if aborted) and its pages are recycled;
    /// the serving state is never touched.
    pub fn stage_update(&mut self, batch: &UpdateBatch) -> Result<UpdateReport, EcssdError> {
        self.require_accelerator()?;
        let rows = match &self.staged {
            Some(s) => s.weights.rows(),
            None => self.weights.as_ref().ok_or(EcssdError::NoWeights)?.rows(),
        };
        batch.validate_against(rows)?;
        let mut staged = match self.staged.take() {
            Some(s) => s,
            None => StagedUpdate {
                weights: self.weights.clone().ok_or(EcssdError::NoWeights)?,
                screener: self.screener.clone().ok_or(EcssdError::NoWeights)?,
                row_lpns: self.row_lpns.clone(),
                touched_rows: Vec::new(),
                freed_lpns: Vec::new(),
                staged_lpns: Vec::new(),
                report: UpdateReport::default(),
            },
        };
        match self.apply_ops(batch, &mut staged) {
            Ok(report) => {
                staged.report = staged.report.merge(&report);
                self.staged = Some(staged);
                Ok(report)
            }
            Err(e) => {
                // Recycle every page of the dropped version; trims on
                // already-dead pages are idempotent no-ops.
                for &lpn in &staged.staged_lpns {
                    let _ = self.device.trim_mapped(lpn, self.clock);
                }
                self.free_lpns.extend_from_slice(&staged.staged_lpns);
                Err(e)
            }
        }
    }

    /// Applies one batch's ops to the staged matrices and charges the
    /// flash traffic (programs, GC, parity) on the shared timelines.
    fn apply_ops(
        &mut self,
        batch: &UpdateBatch,
        staged: &mut StagedUpdate,
    ) -> Result<UpdateReport, EcssdError> {
        let mut report = UpdateReport::default();
        let cols = staged.weights.cols();
        // Host ships the batch's fresh rows over PCIe before any flash op.
        let payload_rows = batch
            .ops()
            .iter()
            .filter(|op| !matches!(op, UpdateOp::Remove(_)))
            .count() as u64;
        let mut t = self
            .device
            .host_mut()
            .transfer(payload_rows * 4 * cols as u64, self.clock);
        // Staging is asynchronous with serving: the host hands the batch
        // off (the clock advances past the PCIe transfer only) and the
        // programs below occupy the flash timelines in the background.
        // Query reads issued later queue behind them wherever they collide
        // on a die or channel bus — the read/write interference the update
        // study measures.
        let issue = t;
        let mut new_lpns: Vec<u64> = Vec::new();
        let mut rep_addr: Option<PhysPageAddr> = None;
        let gc_before = self.device.ftl().gc_totals();
        let zero_row = vec![0.0f32; cols];
        for op in batch.ops() {
            let row = match op {
                UpdateOp::Add(v) => {
                    let mut grown = staged.weights.as_slice().to_vec();
                    grown.extend_from_slice(v);
                    staged.weights = DenseMatrix::from_vec(staged.weights.rows() + 1, cols, grown)?;
                    staged.screener.append_row(v)?;
                    staged.row_lpns.push(0); // patched below
                    report.rows_added += 1;
                    staged.weights.rows() - 1
                }
                UpdateOp::Replace(r, v) => {
                    staged.weights.row_mut(*r).copy_from_slice(v);
                    t = self.requant_staged_row(staged, &mut report, *r, v, t)?;
                    report.rows_replaced += 1;
                    *r
                }
                UpdateOp::Remove(r) => {
                    // Tombstone: the category id stays valid for in-flight
                    // queries; its weights go to zero.
                    staged.weights.row_mut(*r).fill(0.0);
                    t = self.requant_staged_row(staged, &mut report, *r, &zero_row, t)?;
                    report.rows_removed += 1;
                    *r
                }
            };
            if op.target().is_some() {
                // Supersede the row's current pages (version N's for a
                // first touch — they stay readable until commit).
                let old_first = staged.row_lpns[row];
                for p in 0..self.pages_per_row {
                    staged.freed_lpns.push(old_first + p);
                }
            }
            // Program version N+1's row at fresh LPNs.
            let mut first = None;
            for _ in 0..self.pages_per_row {
                let lpn = self.take_lpn();
                first.get_or_insert(lpn);
                // Journaled write path (timing-neutral without a journal).
                let (addr, jdone) = self.device.write_mapped(lpn, t)?;
                rep_addr.get_or_insert(addr);
                t = t
                    .max(self.device.flash_mut().program_page(addr, t))
                    .max(jdone);
                staged.staged_lpns.push(lpn);
                new_lpns.push(lpn);
                report.pages_programmed += 1;
            }
            if let Some(first) = first {
                staged.row_lpns[row] = first;
            }
            staged.touched_rows.push(row as u64);
        }
        t = self.charge_side_effects(&mut report, gc_before, rep_addr, &new_lpns, t);
        report.staged_at = t;
        self.clock = issue;
        Ok(report)
    }

    /// Charges what the update writes triggered beyond the data programs:
    /// GC relocations/erases and the RAID-5 read-modify-write of the
    /// touched stripes.
    fn charge_side_effects(
        &mut self,
        report: &mut UpdateReport,
        gc_before: GcReport,
        rep_addr: Option<PhysPageAddr>,
        new_lpns: &[u64],
        mut t: SimTime,
    ) -> SimTime {
        let rep = rep_addr.unwrap_or(PhysPageAddr {
            channel: 0,
            die: 0,
            plane: 0,
            block: 0,
            page: 0,
        });
        let gc_after = self.device.ftl().gc_totals();
        report.gc = GcReport {
            moved_pages: gc_after.moved_pages - gc_before.moved_pages,
            erased_blocks: gc_after.erased_blocks - gc_before.erased_blocks,
        };
        if report.gc != GcReport::default() {
            let (ftl, flash) = self.device.ftl_and_flash_mut();
            t = t.max(ftl.charge_gc(flash, rep.channel, report.gc, t));
        }
        let dies = self.device.config().geometry.dies_per_channel;
        if !new_lpns.is_empty() && dies >= 2 {
            let model = ParityRefreshModel::new(ParityScheme::new(dies));
            let cost = model.refresh_for_pages(new_lpns);
            for _ in 0..cost.page_reads {
                t = t.max(self.device.flash_mut().read_page(rep, t).done);
            }
            for _ in 0..cost.parity_programs {
                t = t.max(self.device.flash_mut().program_page(rep, t));
            }
            report.parity = cost;
        }
        t
    }

    /// Re-quantizes one staged screener row per the device policy,
    /// escalating to a full re-quantization when in-place drift trips the
    /// detector (the whole INT4 image is rewritten in DRAM, restoring
    /// exactness).
    fn requant_staged_row(
        &mut self,
        staged: &mut StagedUpdate,
        report: &mut UpdateReport,
        row: usize,
        values: &[f32],
        mut t: SimTime,
    ) -> Result<SimTime, EcssdError> {
        let row_bytes = (staged.screener.projected_dim().div_ceil(2) + 4) as u64;
        match self.update_policy.requant {
            RequantPolicy::Exact => {
                staged.screener.requantize_row(row, values)?;
                report.rows_requantized += 1;
                t = self.device.dram_mut().transfer(row_bytes, t);
            }
            RequantPolicy::InPlace { .. } => {
                let drift = staged.screener.reencode_row_in_place(row, values)?;
                report.rows_reencoded += 1;
                t = self.device.dram_mut().transfer(row_bytes, t);
                if self.drift.observe(drift) {
                    // Full re-quantization from the staged weights: every
                    // deployed scale returns to its ideal.
                    for r in 0..staged.weights.rows() {
                        let fresh = staged.weights.row(r).to_vec();
                        staged.screener.requantize_row(r, &fresh)?;
                    }
                    report.rows_requantized += staged.weights.rows() as u64;
                    report.drift_requants += 1;
                    self.drift.reset();
                    let int4_bytes = staged.screener.weights4().storage_bytes() as u64;
                    t = self.device.dram_mut().transfer(int4_bytes, t);
                }
            }
        }
        Ok(t)
    }

    /// Atomically swaps the staged version in: queries issued after this
    /// call read version N+1, queries completed before it read version N,
    /// and none ever sees a mix. Superseded pages are trimmed (their LPNs
    /// recycle to future updates) and every touched row is invalidated in
    /// the hot-row cache.
    ///
    /// # Errors
    ///
    /// Fails with [`EcssdError::NoStagedUpdate`] when nothing is staged.
    pub fn commit_update(&mut self) -> Result<UpdateReport, EcssdError> {
        self.require_accelerator()?;
        let staged = self.staged.take().ok_or(EcssdError::NoStagedUpdate)?;
        let mut report = staged.report;
        // The swap itself: version N+1 becomes the serving state.
        self.weights = Some(staged.weights);
        self.screener = Some(staged.screener);
        self.row_lpns = staged.row_lpns;
        // Committed `Add` ops grow the hotness histogram; removed rows
        // keep their slot (tombstoned, never accessed again).
        let rows = self.weights.as_ref().map_or(0, DenseMatrix::rows);
        self.row_accesses.resize(rows, 0);
        // Staleness barrier: a committed query can never be served a
        // pre-update cached row image.
        let inv_before = self.hot_cache.stats().invalidations;
        self.hot_cache.invalidate_rows(&staged.touched_rows);
        report.cache_invalidations = self.hot_cache.stats().invalidations - inv_before;
        // Version N's superseded pages die and their LPNs recycle. The
        // trims are applied directly and journaled below as part of the
        // commit group, so the whole commit is one atomic flush: a crash
        // rolls back the trims and the placement bumps together.
        for &lpn in &staged.freed_lpns {
            self.device.ftl_mut().trim(lpn)?;
        }
        self.free_lpns.extend_from_slice(&staged.freed_lpns);
        self.update_programs += report.pages_programmed + report.parity.parity_programs;
        self.epoch += 1;
        report.epoch = self.epoch;
        let touched: Vec<u64> = staged
            .touched_rows
            .iter()
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        self.record_commit(&touched, &staged.freed_lpns, touched.len() as u64);
        Ok(report)
    }

    /// Drops the staged version: its pages are trimmed and their LPNs
    /// recycle. The serving state is untouched.
    ///
    /// # Errors
    ///
    /// Fails with [`EcssdError::NoStagedUpdate`] when nothing is staged.
    pub fn abort_update(&mut self) -> Result<(), EcssdError> {
        let staged = self.staged.take().ok_or(EcssdError::NoStagedUpdate)?;
        for &lpn in &staged.staged_lpns {
            self.device.trim_mapped(lpn, self.clock)?;
        }
        self.free_lpns.extend_from_slice(&staged.staged_lpns);
        Ok(())
    }
}
