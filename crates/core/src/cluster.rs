//! Functional multi-ECSSD scale-out (§7.1): a classification layer
//! partitioned over several devices, queried in parallel, with host-side
//! top-k merging.
//!
//! This is the API-level counterpart of [`crate::scale::run_scale_out`]
//! (which measures throughput): every shard is a real [`Ecssd`] running the
//! full screening + CFP32 pipeline, and the merged predictions carry
//! global category ids.

use ecssd_screen::{DenseMatrix, Score, ThresholdPolicy};
use ecssd_ssd::SimTime;

use crate::parallel::run_shards;
use crate::{sort_scores, Classifier, ClassifierStats, Ecssd, EcssdConfig, EcssdError, EcssdMode};

/// A host-managed group of ECSSDs, each holding one contiguous shard of
/// the classification layer.
#[derive(Debug)]
pub struct EcssdCluster {
    devices: Vec<Ecssd>,
    /// First global row of each shard (plus a trailing end marker).
    shard_starts: Vec<usize>,
    enabled: bool,
    /// Simulate the shard devices on parallel host threads
    /// ([`EcssdConfig::parallel_shards`]); the index-ordered merge keeps
    /// results byte-identical to the sequential path.
    parallel: bool,
    queries: u64,
    batches: u64,
}

impl EcssdCluster {
    /// Powers on `devices` ECSSDs in accelerator mode.
    ///
    /// ```
    /// use ecssd_core::prelude::*;
    /// # fn main() -> Result<(), EcssdError> {
    /// let mut cluster = EcssdCluster::new(EcssdConfig::tiny(), 2);
    /// cluster.deploy(&DenseMatrix::random(600, 32, 1))?;
    /// cluster.filter_threshold(ThresholdPolicy::TopRatio(0.1))?;
    /// let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.2).sin()).collect();
    /// let top = cluster.classify_batch(&[x], 3)?;
    /// assert_eq!(top[0].len(), 3);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0`.
    pub fn new(config: EcssdConfig, devices: usize) -> Self {
        assert!(devices > 0, "a cluster needs at least one device");
        let parallel = config.parallel_shards;
        EcssdCluster {
            devices: (0..devices)
                .map(|_| {
                    let mut d = Ecssd::new(config.clone());
                    d.enable();
                    d
                })
                .collect(),
            shard_starts: Vec::new(),
            enabled: true,
            parallel,
            queries: 0,
            batches: 0,
        }
    }

    /// Switches every device back to accelerator mode.
    pub fn enable(&mut self) {
        for device in &mut self.devices {
            device.enable();
        }
        self.enabled = true;
    }

    /// Switches every device to conventional SSD mode; classification
    /// calls fail with [`EcssdError::WrongMode`] until re-enabled.
    pub fn disable(&mut self) {
        for device in &mut self.devices {
            device.disable();
        }
        self.enabled = false;
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.devices.len()
    }

    /// Partitions `weights` into contiguous row shards and deploys one per
    /// device (§7.1: "the huge classification layer will be partitioned
    /// into 5 ECSSDs for parallel execution").
    ///
    /// # Errors
    ///
    /// Fails with [`EcssdError::WrongMode`] while disabled and propagates
    /// per-device deployment errors (a mid-deployment failure marks the
    /// cluster undeployed rather than half-deployed).
    ///
    /// # Panics
    ///
    /// Panics if there are fewer rows than devices.
    pub fn weight_deploy(&mut self, weights: &DenseMatrix) -> Result<(), EcssdError> {
        if !self.enabled {
            return Err(EcssdError::WrongMode {
                current: EcssdMode::Ssd,
            });
        }
        let n = self.devices.len();
        let rows = weights.rows();
        assert!(rows >= n, "fewer rows than devices");
        let per = rows.div_ceil(n);
        let mut starts = Vec::with_capacity(n + 1);
        for (i, device) in self.devices.iter_mut().enumerate() {
            let start = i * per;
            let end = ((i + 1) * per).min(rows);
            starts.push(start);
            let mut data = Vec::with_capacity((end - start) * weights.cols());
            for r in start..end {
                data.extend_from_slice(weights.row(r));
            }
            let attempt = DenseMatrix::from_vec(end - start, weights.cols(), data)
                .map_err(EcssdError::Screen)
                .and_then(|shard| device.weight_deploy(&shard));
            if let Err(e) = attempt {
                self.shard_starts.clear();
                return Err(e);
            }
        }
        starts.push(rows);
        self.shard_starts = starts;
        Ok(())
    }

    /// Sets the screening threshold on every device.
    ///
    /// # Errors
    ///
    /// Propagates per-device errors.
    pub fn filter_threshold(&mut self, policy: ThresholdPolicy) -> Result<(), EcssdError> {
        for device in &mut self.devices {
            device.filter_threshold(policy)?;
        }
        Ok(())
    }

    /// Classifies a batch across all shards and merges the per-device
    /// top-k into global top-k lists (category ids are global) — the
    /// primary inference entry point (also available through the
    /// [`Classifier`] trait).
    ///
    /// # Errors
    ///
    /// Same contract as [`Ecssd::classify_batch`]: [`EcssdError::WrongMode`]
    /// while disabled, [`EcssdError::NoWeights`] before deployment,
    /// [`EcssdError::NoInputs`] on an empty batch,
    /// [`EcssdError::KExceedsCategories`] when `k` exceeds the deployed
    /// categories, plus propagated device errors.
    pub fn classify_batch(
        &mut self,
        inputs: &[Vec<f32>],
        k: usize,
    ) -> Result<Vec<Vec<Score>>, EcssdError> {
        if !self.enabled {
            return Err(EcssdError::WrongMode {
                current: EcssdMode::Ssd,
            });
        }
        if self.shard_starts.is_empty() {
            return Err(EcssdError::NoWeights);
        }
        if inputs.is_empty() {
            return Err(EcssdError::NoInputs);
        }
        let categories = *self.shard_starts.last().unwrap_or(&0);
        if k > categories {
            return Err(EcssdError::KExceedsCategories { k, categories });
        }
        // Shard devices are independent, so with `parallel_shards` they
        // classify on parallel host threads; the merge below walks the
        // results in shard-index order either way, keeping the output
        // byte-identical to the sequential loop.
        let starts = &self.shard_starts;
        let per_shard_results = run_shards(&mut self.devices, self.parallel, |i, device| {
            let shard_rows = starts[i + 1] - starts[i];
            device.classify_batch(inputs, k.min(shard_rows))
        })?;
        let mut merged: Vec<Vec<Score>> = vec![Vec::new(); inputs.len()];
        for (i, per_shard) in per_shard_results.into_iter().enumerate() {
            let offset = self.shard_starts[i];
            for (query, top) in merged.iter_mut().zip(per_shard) {
                query.extend(top.into_iter().map(|s| Score {
                    category: s.category + offset,
                    value: s.value,
                }));
            }
        }
        for query in &mut merged {
            sort_scores(query);
            query.truncate(k);
        }
        self.queries += inputs.len() as u64;
        self.batches += 1;
        Ok(merged)
    }

    /// The slowest device's simulated elapsed time — the cluster's
    /// end-to-end latency (devices run in parallel).
    pub fn elapsed(&self) -> SimTime {
        self.devices
            .iter()
            .map(Classifier::elapsed)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

impl Classifier for EcssdCluster {
    fn deploy(&mut self, weights: &DenseMatrix) -> Result<(), EcssdError> {
        self.weight_deploy(weights)
    }

    fn classify_batch(
        &mut self,
        inputs: &[Vec<f32>],
        k: usize,
    ) -> Result<Vec<Vec<Score>>, EcssdError> {
        EcssdCluster::classify_batch(self, inputs, k)
    }

    fn elapsed(&self) -> SimTime {
        EcssdCluster::elapsed(self)
    }

    fn stats(&self) -> ClassifierStats {
        let cache = self
            .devices
            .iter()
            .map(Ecssd::cache_stats)
            .fold(Default::default(), |acc: ecssd_ssd::CacheStats, s| {
                acc.merge(&s)
            });
        ClassifierStats {
            devices: self.devices.len(),
            categories: self.shard_starts.last().copied().unwrap_or(0),
            queries: self.queries,
            batches: self.batches,
            cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecssd_screen::{full_classify, topk_recall, ClassifyPrecision};

    fn planted(l: usize, d: usize) -> DenseMatrix {
        let mut w = DenseMatrix::random(l, d, 77);
        for r in 0..l {
            if r % 9 == 4 {
                for v in w.row_mut(r) {
                    *v *= 2.5;
                }
            }
        }
        w
    }

    #[test]
    fn cluster_matches_single_device_semantics() {
        let d = 64;
        let weights = planted(1200, d);
        let mut cluster = EcssdCluster::new(EcssdConfig::tiny(), 3);
        cluster.weight_deploy(&weights).unwrap();
        cluster
            .filter_threshold(ThresholdPolicy::TopRatio(0.1))
            .unwrap();
        // Query aligned with a planted row in the middle shard: its global
        // id must survive sharding, screening, and the merge.
        let target = 400; // 400 % 9 == 4: a planted (hot) row
        let x: Vec<f32> = weights
            .row(target)
            .iter()
            .enumerate()
            .map(|(i, &v)| v + 0.05 * ((i as f32) * 0.31).sin())
            .collect();
        let merged = cluster
            .classify_batch(std::slice::from_ref(&x), 5)
            .unwrap()
            .remove(0);
        assert_eq!(merged.len(), 5);
        assert!(merged.windows(2).all(|p| p[0].value >= p[1].value));
        // Global ids are valid and the top-1 is the planted row.
        assert!(merged.iter().all(|s| s.category < 1200));
        let reference = full_classify(&weights, &x, ClassifyPrecision::Fp32).unwrap();
        assert_eq!(reference[0].category, target, "sanity: brute force agrees");
        assert_eq!(merged[0].category, target, "cluster must find the target");
        let recall = topk_recall(&reference, &merged, 5);
        assert!(recall.recall() >= 0.6, "recall {}", recall.recall());
    }

    #[test]
    fn classify_before_deploy_fails() {
        let mut cluster = EcssdCluster::new(EcssdConfig::tiny(), 2);
        assert!(matches!(
            cluster.classify_batch(&[vec![0.0; 8]], 3),
            Err(EcssdError::NoWeights)
        ));
    }

    #[test]
    fn disabled_cluster_reports_wrong_mode() {
        let weights = planted(600, 32);
        let mut cluster = EcssdCluster::new(EcssdConfig::tiny(), 2);
        cluster.weight_deploy(&weights).unwrap();
        cluster.disable();
        assert!(matches!(
            cluster.classify_batch(&[vec![0.0; 32]], 3),
            Err(EcssdError::WrongMode { .. })
        ));
        cluster.enable();
        assert!(cluster.classify_batch(&[vec![0.0; 32]], 3).is_ok());
    }

    #[test]
    fn elapsed_is_the_slowest_device() {
        let weights = planted(600, 32);
        let mut cluster = EcssdCluster::new(EcssdConfig::tiny(), 2);
        cluster.weight_deploy(&weights).unwrap();
        let per_device: Vec<SimTime> = (0..2).map(|i| cluster.devices[i].elapsed()).collect();
        assert_eq!(cluster.elapsed(), per_device.into_iter().max().unwrap());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_cluster_panics() {
        let _ = EcssdCluster::new(EcssdConfig::tiny(), 0);
    }
}
