//! The unified frontend API: every way of running extreme classification —
//! one device ([`crate::Ecssd`]), a host-managed shard group
//! ([`crate::EcssdCluster`]), or the threaded serving engine
//! (`ecssd_serve::ServeEngine`) — implements one [`Classifier`] trait, so
//! callers, benchmarks and misuse tests are written once against the trait.

use ecssd_screen::{DenseMatrix, Score};
use ecssd_ssd::{CacheStats, SimTime};
use serde::{Deserialize, Serialize};

use crate::{EcssdError, Request};

/// Aggregate counters every [`Classifier`] frontend reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassifierStats {
    /// Devices (shards) behind this frontend.
    pub devices: usize,
    /// Categories deployed (0 before deployment).
    pub categories: usize,
    /// Queries classified through the frontend.
    pub queries: u64,
    /// Batches executed (a batch is one device round trip).
    pub batches: u64,
    /// Hot candidate-row cache counters, summed over devices.
    pub cache: CacheStats,
}

/// A deployed extreme-classification frontend.
///
/// The contract, asserted identically against every implementation:
///
/// * [`Classifier::deploy`] installs an `L × D` weight matrix; calling any
///   classification method first fails with [`EcssdError::NoWeights`].
/// * [`Classifier::classify_batch`] is the one entry point for inference:
///   it returns one descending-sorted top-`k` list per input. An empty
///   batch fails with [`EcssdError::NoInputs`]; `k` greater than the
///   deployed category count fails with [`EcssdError::KExceedsCategories`];
///   a frontend switched out of accelerator mode fails with
///   [`EcssdError::WrongMode`].
/// * [`Classifier::elapsed`] is the simulated time consumed so far (for
///   multi-device frontends: the slowest shard, since shards run in
///   parallel).
/// * [`Classifier::stats`] reports the query/batch/cache counters.
pub trait Classifier {
    /// Deploys the classification layer.
    ///
    /// # Errors
    ///
    /// Fails with [`EcssdError::WrongMode`] outside accelerator mode and
    /// propagates device deployment errors.
    fn deploy(&mut self, weights: &DenseMatrix) -> Result<(), EcssdError>;

    /// Classifies a batch of feature vectors, returning the global top-`k`
    /// per input, sorted by descending score (ties broken by ascending
    /// category id).
    ///
    /// # Errors
    ///
    /// See the trait-level contract.
    fn classify_batch(
        &mut self,
        inputs: &[Vec<f32>],
        k: usize,
    ) -> Result<Vec<Vec<Score>>, EcssdError>;

    /// Classifies typed [`Request`]s, returning one top-`k` list per
    /// request in submission order.
    ///
    /// The provided implementation groups maximal runs of consecutive
    /// requests sharing the same `k` and forwards each run to
    /// [`Classifier::classify_batch`], so every frontend accepts typed
    /// requests uniformly. QoS metadata (class, deadline, arrival) is
    /// inert here — the synchronous frontends serve every admitted
    /// request; only the serving layers act on it.
    ///
    /// # Errors
    ///
    /// Same contract as [`Classifier::classify_batch`]; an empty request
    /// slice fails with [`EcssdError::NoInputs`].
    fn classify_requests(&mut self, requests: &[Request]) -> Result<Vec<Vec<Score>>, EcssdError> {
        if requests.is_empty() {
            return Err(EcssdError::NoInputs);
        }
        let mut out = Vec::with_capacity(requests.len());
        let mut start = 0;
        while start < requests.len() {
            let k = requests[start].k;
            let mut end = start + 1;
            while end < requests.len() && requests[end].k == k {
                end += 1;
            }
            let inputs: Vec<Vec<f32>> = requests[start..end]
                .iter()
                .map(|r| r.features.clone())
                .collect();
            out.extend(self.classify_batch(&inputs, k)?);
            start = end;
        }
        Ok(out)
    }

    /// Simulated time consumed so far.
    fn elapsed(&self) -> SimTime;

    /// Aggregate counters.
    fn stats(&self) -> ClassifierStats;
}

/// Sorts a merged score list into the canonical output order: descending
/// value, ties by ascending category. Single-device results already come
/// out in this order (stable sort over ascending-category candidates), so
/// multi-shard merges that use the same comparator are bit-identical to a
/// single device holding the whole matrix.
pub fn sort_scores(scores: &mut [Score]) {
    scores.sort_by(|a, b| {
        b.value
            .total_cmp(&a.value)
            .then_with(|| a.category.cmp(&b.category))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_scores_is_deterministic_under_ties() {
        let mut scores = vec![
            Score {
                category: 9,
                value: 1.0,
            },
            Score {
                category: 2,
                value: 1.0,
            },
            Score {
                category: 5,
                value: 3.0,
            },
        ];
        sort_scores(&mut scores);
        let order: Vec<usize> = scores.iter().map(|s| s.category).collect();
        assert_eq!(order, vec![5, 2, 9]);
    }
}
