//! The ECSSD machine: the paper's primary contribution assembled on top of
//! the substrates.
//!
//! ECSSD (ISCA '23) inserts a dual-precision accelerator next to the data
//! buffer of a conventional SSD and co-designs three things around the
//! approximate screening algorithm:
//!
//! 1. an **alignment-free FP32 MAC** datapath fed with CFP32 operands
//!    (`ecssd-float`), lifting in-SSD FP throughput from 29.2 to 50 GFLOPS
//!    within the 0.21 mm² area budget,
//! 2. a **heterogeneous data layout** — INT4 screener weights in device
//!    DRAM, FP32 weight rows in NAND — removing 4-bit/32-bit transfer
//!    interference ([`DataPlacement`]),
//! 3. **learning-based adaptive interleaving** of FP32 rows over flash
//!    channels (`ecssd-layout`), lifting channel bandwidth utilization to
//!    ~95 %.
//!
//! [`EcssdMachine`] is the cycle-approximate performance model driving the
//! `ecssd-ssd` discrete-event substrate; [`Ecssd`] is the functional
//! host-facing device with the Table-1 API; [`roofline`] and [`scale`]
//! reproduce the paper's analytical figures.
//!
//! ```
//! use ecssd_core::{EcssdConfig, EcssdMachine, MachineVariant};
//! use ecssd_workloads::{Benchmark, SampledWorkload, TraceConfig};
//!
//! let bench = Benchmark::by_abbrev("GNMT-E32K").unwrap();
//! let workload = SampledWorkload::new(bench, TraceConfig::paper_default());
//! let mut machine = EcssdMachine::new(
//!     EcssdConfig::paper_default(),
//!     MachineVariant::paper_ecssd(),
//!     Box::new(workload),
//! )
//! .expect("INT4 matrix fits device DRAM");
//! let report = machine.run(2).expect("no faults injected"); // two query batches
//! assert!(report.makespan.as_ns() > 0);
//! assert!(report.fp_channel_utilization > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod accelerator;
mod api;
mod classifier;
mod cluster;
mod config;
mod energy;
mod host;
mod integration;
mod parallel;
mod pipeline;
mod recovery;
mod request;
pub mod roofline;
pub mod scale;
mod update;

pub use accelerator::{ComputeEngine, Fp32Engine, Int4Engine};
pub use api::{Ecssd, EcssdError, EcssdMode};
pub use classifier::{sort_scores, Classifier, ClassifierStats};
pub use cluster::EcssdCluster;
pub use config::{AcceleratorConfig, ConfigError, EcssdConfig, EcssdConfigBuilder};
pub use ecssd_update::{
    RequantPolicy, ScaleDriftDetector, UpdateBatch, UpdateError, UpdateOp, UpdatePolicy,
    UpdateReport,
};
pub use energy::{EnergyModel, EnergyReport};
pub use host::{ArrivalSchedule, HostCoordinator, ServiceReport};
pub use integration::ClassifierLayer;
pub use pipeline::{
    run_tile_loop, DataPlacement, DegradationPolicy, EcssdMachine, MachineVariant, RowSelection,
    RunReport, SchedulePlan, TaskKind, TilePhase, TileTask, TileTiming,
};
pub use recovery::RecoveryOutcome;
pub use request::{GatherRequest, QueryClass, RejectReason, Request, SloTargets};

/// One-stop imports for writing against the unified frontend API: the
/// [`Classifier`] trait, the frontends that implement it, the validating
/// config builder, and the screen-layer types that appear in its signatures.
///
/// ```
/// use ecssd_core::prelude::*;
///
/// # fn main() -> Result<(), EcssdError> {
/// let config = EcssdConfig::tiny_builder().build()?;
/// let mut device = Ecssd::new(config);
/// device.enable();
/// device.deploy(&DenseMatrix::random(256, 64, 42))?;
/// let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.1).sin()).collect();
/// let top = device.classify_batch(&[x], 5)?;
/// assert_eq!(top[0].len(), 5);
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use crate::{
        Classifier, ClassifierStats, ConfigError, Ecssd, EcssdCluster, EcssdConfig,
        EcssdConfigBuilder, EcssdError, EcssdMode, QueryClass, RejectReason, Request, SloTargets,
    };
    pub use ecssd_screen::{DenseMatrix, Score, ThresholdPolicy};
    pub use ecssd_ssd::{CacheStats, SimTime};
}
