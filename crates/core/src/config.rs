//! ECSSD configuration (Table 2).

use ecssd_float::{MacCircuit, MacCircuitModel};
use ecssd_ssd::SsdConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the inserted accelerator (Table 2, lower half).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Clock frequency in GHz (400 MHz).
    pub clock_ghz: f64,
    /// FP32 MAC lanes (64).
    pub fp32_lanes: usize,
    /// INT4 MAC lanes (256).
    pub int4_lanes: usize,
    /// INT4 weight buffer bytes (128 KB).
    pub int4_weight_buffer: u64,
    /// FP32 weight buffer bytes (400 KB).
    pub fp32_weight_buffer: u64,
    /// FP32/INT4 input buffers, output buffers and index buffer, summed
    /// (≈111 KB).
    pub side_buffers: u64,
    /// Inference batch size processed per weight pass. Each fetched weight
    /// row is reused across the whole batch, so the FP compute per fetched
    /// byte scales with this (see DESIGN.md §3).
    pub batch: usize,
}

impl AcceleratorConfig {
    /// Table 2 values with the calibrated batch of 16.
    pub fn paper_default() -> Self {
        AcceleratorConfig {
            clock_ghz: 0.4,
            fp32_lanes: 64,
            int4_lanes: 256,
            int4_weight_buffer: 128 << 10,
            fp32_weight_buffer: 400 << 10,
            side_buffers: 111 << 10,
            batch: 16,
        }
    }

    /// Peak FP32 throughput of `circuit` under the accelerator's FP area
    /// budget, in GFLOPS (alignment-free: ≈50; naive: ≈29.2; SK Hynix in
    /// between — §4.2, §6.4).
    pub fn fp32_gflops(&self, circuit: MacCircuit) -> f64 {
        let model = MacCircuitModel {
            clock_ghz: self.clock_ghz,
        };
        let af_area = model
            .fp_engine(MacCircuit::AlignmentFree, self.fp32_lanes)
            .area_um2;
        model.fp_gflops_at_area(circuit, af_area)
    }

    /// Peak INT4 throughput in GOPS (≈200, Table 2).
    pub fn int4_gops(&self) -> f64 {
        let model = MacCircuitModel {
            clock_ghz: self.clock_ghz,
        };
        model.int4_gops(self.int4_lanes)
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Full ECSSD configuration: the SSD device plus the inserted accelerator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EcssdConfig {
    /// Underlying SSD (Table 2, upper half).
    pub ssd: SsdConfig,
    /// Inserted accelerator (Table 2, lower half).
    pub accelerator: AcceleratorConfig,
}

impl EcssdConfig {
    /// The paper's Table 2 configuration.
    pub fn paper_default() -> Self {
        EcssdConfig {
            ssd: SsdConfig::paper_default(),
            accelerator: AcceleratorConfig::paper_default(),
        }
    }

    /// A small configuration for fast tests (same mechanisms, tiny flash
    /// array).
    pub fn tiny() -> Self {
        EcssdConfig {
            ssd: SsdConfig::tiny(),
            accelerator: AcceleratorConfig::paper_default(),
        }
    }
}

impl Default for EcssdConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughputs_match_table2() {
        let a = AcceleratorConfig::paper_default();
        let af = a.fp32_gflops(MacCircuit::AlignmentFree);
        let naive = a.fp32_gflops(MacCircuit::Naive);
        assert!((af - 50.0).abs() < 2.0, "AF {af}");
        assert!((naive - 29.2).abs() < 1.0, "naive {naive}");
        assert!((a.int4_gops() - 200.0).abs() < 5.0);
    }

    #[test]
    fn sk_hynix_sits_between() {
        let a = AcceleratorConfig::paper_default();
        let sk = a.fp32_gflops(MacCircuit::SkHynix);
        assert!(sk > a.fp32_gflops(MacCircuit::Naive));
        assert!(sk < a.fp32_gflops(MacCircuit::AlignmentFree));
    }

    #[test]
    fn paper_config_composes() {
        let c = EcssdConfig::paper_default();
        assert_eq!(c.ssd.geometry.channels, 8);
        assert_eq!(c.accelerator.fp32_lanes, 64);
    }
}
