//! ECSSD configuration (Table 2), plus the validating builder that is the
//! supported way to construct non-default configurations.

use ecssd_float::{MacCircuit, MacCircuitModel};
use ecssd_ssd::{AllocationPolicy, FlashTiming, SsdConfig, SsdGeometry};
use serde::{Deserialize, Serialize};

/// A typed configuration-validation failure: the builder refuses to emit a
/// config the simulator would panic on or silently truncate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A geometry dimension (channels, dies, planes, blocks, pages,
    /// page bytes) is zero.
    ZeroGeometry {
        /// Which dimension was zero.
        field: &'static str,
    },
    /// A rate or frequency (clock GHz, DRAM GB/s) must be positive and
    /// finite.
    NonPositiveRate {
        /// Which rate was invalid.
        field: &'static str,
    },
    /// A MAC lane count or the inference batch is zero.
    ZeroCount {
        /// Which count was zero.
        field: &'static str,
    },
    /// The data buffer must hold at least one flash page per ping-pong
    /// bank.
    BufferTooSmall {
        /// Configured buffer bytes.
        buffer_bytes: u64,
        /// Configured page bytes.
        page_bytes: u64,
    },
    /// The overprovisioning fraction must lie in `[0, 1)`.
    OverprovisionOutOfRange {
        /// The rejected value.
        value: f64,
    },
    /// The hot-row cache cannot outgrow the device DRAM.
    HotCacheExceedsDram {
        /// Requested cache bytes.
        cache_bytes: u64,
        /// Configured DRAM bytes.
        dram_bytes: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroGeometry { field } => {
                write!(f, "geometry dimension `{field}` must be nonzero")
            }
            ConfigError::NonPositiveRate { field } => {
                write!(f, "`{field}` must be positive and finite")
            }
            ConfigError::ZeroCount { field } => write!(f, "`{field}` must be nonzero"),
            ConfigError::BufferTooSmall {
                buffer_bytes,
                page_bytes,
            } => write!(
                f,
                "data buffer ({buffer_bytes} B) must hold at least two flash pages \
                 ({page_bytes} B each)"
            ),
            ConfigError::OverprovisionOutOfRange { value } => {
                write!(f, "overprovision fraction {value} outside [0, 1)")
            }
            ConfigError::HotCacheExceedsDram {
                cache_bytes,
                dram_bytes,
            } => write!(
                f,
                "hot-row cache ({cache_bytes} B) exceeds device DRAM ({dram_bytes} B)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of the inserted accelerator (Table 2, lower half).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Clock frequency in GHz (400 MHz).
    pub clock_ghz: f64,
    /// FP32 MAC lanes (64).
    pub fp32_lanes: usize,
    /// INT4 MAC lanes (256).
    pub int4_lanes: usize,
    /// INT4 weight buffer bytes (128 KB).
    pub int4_weight_buffer: u64,
    /// FP32 weight buffer bytes (400 KB).
    pub fp32_weight_buffer: u64,
    /// FP32/INT4 input buffers, output buffers and index buffer, summed
    /// (≈111 KB).
    pub side_buffers: u64,
    /// Inference batch size processed per weight pass. Each fetched weight
    /// row is reused across the whole batch, so the FP compute per fetched
    /// byte scales with this (see DESIGN.md §3).
    pub batch: usize,
}

impl AcceleratorConfig {
    /// Table 2 values with the calibrated batch of 16.
    pub fn paper_default() -> Self {
        AcceleratorConfig {
            clock_ghz: 0.4,
            fp32_lanes: 64,
            int4_lanes: 256,
            int4_weight_buffer: 128 << 10,
            fp32_weight_buffer: 400 << 10,
            side_buffers: 111 << 10,
            batch: 16,
        }
    }

    /// Peak FP32 throughput of `circuit` under the accelerator's FP area
    /// budget, in GFLOPS (alignment-free: ≈50; naive: ≈29.2; SK Hynix in
    /// between — §4.2, §6.4).
    pub fn fp32_gflops(&self, circuit: MacCircuit) -> f64 {
        let model = MacCircuitModel {
            clock_ghz: self.clock_ghz,
        };
        let af_area = model
            .fp_engine(MacCircuit::AlignmentFree, self.fp32_lanes)
            .area_um2;
        model.fp_gflops_at_area(circuit, af_area)
    }

    /// Peak INT4 throughput in GOPS (≈200, Table 2).
    pub fn int4_gops(&self) -> f64 {
        let model = MacCircuitModel {
            clock_ghz: self.clock_ghz,
        };
        model.int4_gops(self.int4_lanes)
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Full ECSSD configuration: the SSD device plus the inserted accelerator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EcssdConfig {
    /// Underlying SSD (Table 2, upper half).
    pub ssd: SsdConfig,
    /// Inserted accelerator (Table 2, lower half).
    pub accelerator: AcceleratorConfig,
    /// Simulate independent shard devices on parallel host threads.
    ///
    /// Shard devices never share simulated resources between commit
    /// boundaries, so the per-shard runs are embarrassingly parallel;
    /// results are merged back in shard-index order, which keeps every
    /// report byte-identical to the sequential path (asserted by the
    /// determinism tests). Off by default: the sequential path stays the
    /// reference, and small configurations lose more to thread spawning
    /// than they gain.
    #[serde(default)]
    pub parallel_shards: bool,
}

impl EcssdConfig {
    /// The paper's Table 2 configuration.
    pub fn paper_default() -> Self {
        EcssdConfig {
            ssd: SsdConfig::paper_default(),
            accelerator: AcceleratorConfig::paper_default(),
            parallel_shards: false,
        }
    }

    /// A small configuration for fast tests (same mechanisms, tiny flash
    /// array).
    pub fn tiny() -> Self {
        EcssdConfig {
            ssd: SsdConfig::tiny(),
            accelerator: AcceleratorConfig::paper_default(),
            parallel_shards: false,
        }
    }

    /// A validating builder seeded with the paper's Table 2 values.
    pub fn builder() -> EcssdConfigBuilder {
        EcssdConfigBuilder::from(Self::paper_default())
    }

    /// A validating builder seeded with the tiny test configuration.
    pub fn tiny_builder() -> EcssdConfigBuilder {
        EcssdConfigBuilder::from(Self::tiny())
    }

    /// Checks every invariant the builder enforces; useful for configs
    /// deserialized from external sources.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let g = self.ssd.geometry;
        for (field, v) in [
            ("channels", g.channels),
            ("dies_per_channel", g.dies_per_channel),
            ("planes_per_die", g.planes_per_die),
            ("blocks_per_plane", g.blocks_per_plane),
            ("pages_per_block", g.pages_per_block),
            ("page_bytes", g.page_bytes),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroGeometry { field });
            }
        }
        for (field, v) in [
            ("dram_gbps", self.ssd.dram_gbps),
            ("clock_ghz", self.accelerator.clock_ghz),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(ConfigError::NonPositiveRate { field });
            }
        }
        for (field, v) in [
            ("fp32_lanes", self.accelerator.fp32_lanes),
            ("int4_lanes", self.accelerator.int4_lanes),
            ("batch", self.accelerator.batch),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroCount { field });
            }
        }
        if self.ssd.buffer_bytes < 2 * g.page_bytes as u64 {
            return Err(ConfigError::BufferTooSmall {
                buffer_bytes: self.ssd.buffer_bytes,
                page_bytes: g.page_bytes as u64,
            });
        }
        if !(0.0..1.0).contains(&self.ssd.overprovision) {
            return Err(ConfigError::OverprovisionOutOfRange {
                value: self.ssd.overprovision,
            });
        }
        if self.ssd.hot_cache_bytes > self.ssd.dram_bytes {
            return Err(ConfigError::HotCacheExceedsDram {
                cache_bytes: self.ssd.hot_cache_bytes,
                dram_bytes: self.ssd.dram_bytes,
            });
        }
        Ok(())
    }
}

/// Builder for [`EcssdConfig`]: starts from a known-good base
/// ([`EcssdConfig::builder`] / [`EcssdConfig::tiny_builder`]), applies
/// overrides, and validates everything in [`EcssdConfigBuilder::build`] —
/// bad geometry or dimensions become typed [`ConfigError`]s instead of
/// panics deep inside the simulator.
///
/// ```
/// use ecssd_core::EcssdConfig;
/// let config = EcssdConfig::builder()
///     .channels(4)
///     .batch(8)
///     .hot_cache_bytes(2 << 20)
///     .build()
///     .expect("valid config");
/// assert_eq!(config.ssd.geometry.channels, 4);
///
/// let err = EcssdConfig::builder().channels(0).build().unwrap_err();
/// assert!(matches!(err, ecssd_core::ConfigError::ZeroGeometry { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct EcssdConfigBuilder {
    config: EcssdConfig,
}

impl From<EcssdConfig> for EcssdConfigBuilder {
    fn from(config: EcssdConfig) -> Self {
        EcssdConfigBuilder { config }
    }
}

impl EcssdConfigBuilder {
    /// Replaces the whole flash geometry.
    pub fn geometry(mut self, geometry: SsdGeometry) -> Self {
        self.config.ssd.geometry = geometry;
        self
    }

    /// Sets the number of flash channels.
    pub fn channels(mut self, channels: usize) -> Self {
        self.config.ssd.geometry.channels = channels;
        self
    }

    /// Sets the dies per channel.
    pub fn dies_per_channel(mut self, dies: usize) -> Self {
        self.config.ssd.geometry.dies_per_channel = dies;
        self
    }

    /// Replaces the flash timing parameters.
    pub fn timing(mut self, timing: FlashTiming) -> Self {
        self.config.ssd.timing = timing;
        self
    }

    /// Sets the LPN → channel allocation policy.
    pub fn allocation_policy(mut self, policy: AllocationPolicy) -> Self {
        self.config.ssd.policy = policy;
        self
    }

    /// Sets the overprovisioned fraction of raw capacity.
    pub fn overprovision(mut self, fraction: f64) -> Self {
        self.config.ssd.overprovision = fraction;
        self
    }

    /// Sets the device DRAM capacity in bytes.
    pub fn dram_bytes(mut self, bytes: u64) -> Self {
        self.config.ssd.dram_bytes = bytes;
        self
    }

    /// Sets the device DRAM bandwidth in GB/s.
    pub fn dram_gbps(mut self, gbps: f64) -> Self {
        self.config.ssd.dram_gbps = gbps;
        self
    }

    /// Sets the data-buffer size in bytes.
    pub fn buffer_bytes(mut self, bytes: u64) -> Self {
        self.config.ssd.buffer_bytes = bytes;
        self
    }

    /// Sets the DRAM hot candidate-row cache capacity (0 disables it).
    pub fn hot_cache_bytes(mut self, bytes: u64) -> Self {
        self.config.ssd.hot_cache_bytes = bytes;
        self
    }

    /// Sets the accelerator clock in GHz.
    pub fn clock_ghz(mut self, ghz: f64) -> Self {
        self.config.accelerator.clock_ghz = ghz;
        self
    }

    /// Sets the FP32 MAC lane count.
    pub fn fp32_lanes(mut self, lanes: usize) -> Self {
        self.config.accelerator.fp32_lanes = lanes;
        self
    }

    /// Sets the INT4 MAC lane count.
    pub fn int4_lanes(mut self, lanes: usize) -> Self {
        self.config.accelerator.int4_lanes = lanes;
        self
    }

    /// Sets the inference batch processed per weight pass.
    pub fn batch(mut self, batch: usize) -> Self {
        self.config.accelerator.batch = batch;
        self
    }

    /// Simulates independent shard devices on parallel host threads (see
    /// [`EcssdConfig::parallel_shards`]). Reports stay byte-identical to
    /// the sequential path; off by default.
    pub fn parallel_shards(mut self, enabled: bool) -> Self {
        self.config.parallel_shards = enabled;
        self
    }

    /// Validates the assembled configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`ConfigError`].
    pub fn build(self) -> Result<EcssdConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl Default for EcssdConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughputs_match_table2() {
        let a = AcceleratorConfig::paper_default();
        let af = a.fp32_gflops(MacCircuit::AlignmentFree);
        let naive = a.fp32_gflops(MacCircuit::Naive);
        assert!((af - 50.0).abs() < 2.0, "AF {af}");
        assert!((naive - 29.2).abs() < 1.0, "naive {naive}");
        assert!((a.int4_gops() - 200.0).abs() < 5.0);
    }

    #[test]
    fn sk_hynix_sits_between() {
        let a = AcceleratorConfig::paper_default();
        let sk = a.fp32_gflops(MacCircuit::SkHynix);
        assert!(sk > a.fp32_gflops(MacCircuit::Naive));
        assert!(sk < a.fp32_gflops(MacCircuit::AlignmentFree));
    }

    #[test]
    fn paper_config_composes() {
        let c = EcssdConfig::paper_default();
        assert_eq!(c.ssd.geometry.channels, 8);
        assert_eq!(c.accelerator.fp32_lanes, 64);
    }

    #[test]
    fn builder_defaults_validate() {
        assert!(EcssdConfig::builder().build().is_ok());
        assert!(EcssdConfig::tiny_builder().build().is_ok());
    }

    #[test]
    fn builder_applies_overrides() {
        let c = EcssdConfig::tiny_builder()
            .channels(2)
            .dies_per_channel(3)
            .batch(4)
            .dram_gbps(6.4)
            .hot_cache_bytes(1 << 20)
            .build()
            .unwrap();
        assert_eq!(c.ssd.geometry.channels, 2);
        assert_eq!(c.ssd.geometry.dies_per_channel, 3);
        assert_eq!(c.accelerator.batch, 4);
        assert_eq!(c.ssd.dram_gbps, 6.4);
        assert_eq!(c.ssd.hot_cache_bytes, 1 << 20);
    }

    #[test]
    fn builder_rejects_bad_geometry_and_dimensions() {
        assert!(matches!(
            EcssdConfig::builder().channels(0).build(),
            Err(ConfigError::ZeroGeometry { field: "channels" })
        ));
        assert!(matches!(
            EcssdConfig::builder().dies_per_channel(0).build(),
            Err(ConfigError::ZeroGeometry {
                field: "dies_per_channel"
            })
        ));
        assert!(matches!(
            EcssdConfig::builder().clock_ghz(0.0).build(),
            Err(ConfigError::NonPositiveRate { field: "clock_ghz" })
        ));
        assert!(matches!(
            EcssdConfig::builder().dram_gbps(f64::NAN).build(),
            Err(ConfigError::NonPositiveRate { field: "dram_gbps" })
        ));
        assert!(matches!(
            EcssdConfig::builder().batch(0).build(),
            Err(ConfigError::ZeroCount { field: "batch" })
        ));
        assert!(matches!(
            EcssdConfig::builder().buffer_bytes(1024).build(),
            Err(ConfigError::BufferTooSmall { .. })
        ));
        assert!(matches!(
            EcssdConfig::builder().overprovision(1.5).build(),
            Err(ConfigError::OverprovisionOutOfRange { .. })
        ));
        assert!(matches!(
            EcssdConfig::builder()
                .dram_bytes(1 << 20)
                .hot_cache_bytes(2 << 20)
                .build(),
            Err(ConfigError::HotCacheExceedsDram { .. })
        ));
    }

    #[test]
    fn config_error_displays_the_field() {
        let err = EcssdConfig::builder().channels(0).build().unwrap_err();
        assert!(err.to_string().contains("channels"));
        assert!(std::error::Error::source(&err).is_none());
    }
}
