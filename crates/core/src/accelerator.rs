//! Timeline models of the accelerator's compute engines.

use ecssd_ssd::{SimTime, Stage, Tracer};
use serde::{Deserialize, Serialize};

/// A serialized compute engine with a fixed operation rate.
///
/// Engines are resources like buses: an operation batch occupies the engine
/// from `max(issue, free_at)` for `ops / rate` nanoseconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComputeEngine {
    /// Giga-operations per second (= ops per ns).
    rate_gops: f64,
    free_at: SimTime,
    busy_ns: u64,
    ops_done: u64,
    #[serde(skip)]
    tracer: Tracer,
    #[serde(skip)]
    trace_stage: Option<Stage>,
}

impl ComputeEngine {
    /// An engine with the given throughput in GOPS (operations per ns).
    ///
    /// # Panics
    ///
    /// Panics if `rate_gops` is not strictly positive.
    pub fn new(rate_gops: f64) -> Self {
        assert!(rate_gops > 0.0, "engine rate must be positive");
        ComputeEngine {
            rate_gops,
            free_at: SimTime::ZERO,
            busy_ns: 0,
            ops_done: 0,
            tracer: Tracer::disabled(),
            trace_stage: None,
        }
    }

    /// Installs a trace handle; every subsequent batch records a span of
    /// the given stage (e.g. [`Stage::Int4Screen`] for the screening array,
    /// [`Stage::Fp32Mac`] for the CFP32 array).
    pub fn set_tracer(&mut self, tracer: Tracer, stage: Stage) {
        self.tracer = tracer;
        self.trace_stage = Some(stage);
    }

    /// Schedules `ops` operations no earlier than `issue`; returns the
    /// completion time.
    pub fn compute(&mut self, ops: u64, issue: SimTime) -> SimTime {
        if ops == 0 {
            return issue;
        }
        let start = issue.max(self.free_at);
        let dur = ((ops as f64 / self.rate_gops).ceil() as u64).max(1);
        let done = start + dur;
        self.free_at = done;
        self.busy_ns += dur;
        self.ops_done += ops;
        if let Some(stage) = self.trace_stage {
            self.tracer.span(stage, start, done);
        }
        done
    }

    /// Throughput in GOPS.
    pub fn rate_gops(&self) -> f64 {
        self.rate_gops
    }

    /// Accumulated busy time, ns.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Total operations executed.
    pub fn ops_done(&self) -> u64 {
        self.ops_done
    }

    /// Earliest time the engine is free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

/// The 256-lane INT4 MAC array (newtype for call-site clarity).
pub type Int4Engine = ComputeEngine;
/// The 64-lane FP32 MAC array.
pub type Fp32Engine = ComputeEngine;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_is_ops_over_rate() {
        let mut e = ComputeEngine::new(50.0); // 50 GFLOPS
        let done = e.compute(5_000, SimTime::ZERO);
        assert_eq!(done.as_ns(), 100);
        assert_eq!(e.busy_ns(), 100);
        assert_eq!(e.ops_done(), 5_000);
    }

    #[test]
    fn batches_serialize() {
        let mut e = ComputeEngine::new(1.0);
        let a = e.compute(10, SimTime::ZERO);
        let b = e.compute(10, SimTime::ZERO);
        assert_eq!(a.as_ns(), 10);
        assert_eq!(b.as_ns(), 20);
    }

    #[test]
    fn zero_ops_is_free() {
        let mut e = ComputeEngine::new(1.0);
        assert_eq!(e.compute(0, SimTime::from_ns(4)), SimTime::from_ns(4));
        assert_eq!(e.busy_ns(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ComputeEngine::new(0.0);
    }
}
