//! The host-facing ECSSD device with the Table-1 software API.
//!
//! [`Ecssd`] is a *functional* emulator: it executes the real approximate
//! screening math (projection, INT4 screening, threshold filtering, CFP32
//! candidate-only classification) against weights physically placed through
//! the FTL, and charges simulated time for every transfer it performs. It
//! is the integration point the examples drive end-to-end; the
//! cycle-approximate throughput studies use [`crate::EcssdMachine`].

use ecssd_float::Cfp32Vector;
use ecssd_screen::{
    candidate_only_classify, ClassifyPrecision, DenseMatrix, Prediction, Projector, Score,
    ScreenError, Screener, ThresholdPolicy,
};
use ecssd_ssd::{HotRowCache, SimTime, SsdDevice, SsdError};
use ecssd_update::{UpdateBatch, UpdateReport};

use crate::{Classifier, ClassifierStats, EcssdConfig, GatherRequest};

/// Tag bit distinguishing embedding-table rows from classifier weight rows
/// in the shared DRAM hot-row cache (both tasks key the cache by row id).
const TABLE_KEY_TAG: u64 = 1 << 63;

/// Working mode (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EcssdMode {
    /// Conventional SSD: the accelerator is disabled and ignored.
    Ssd,
    /// The device only serves the extreme-classification accelerator.
    Accelerator,
}

/// Errors surfaced by the Table-1 API.
#[derive(Debug)]
#[non_exhaustive]
pub enum EcssdError {
    /// The call is not valid in the current mode.
    WrongMode {
        /// Mode the device is in.
        current: EcssdMode,
    },
    /// Weights were not deployed yet.
    NoWeights,
    /// No embedding table was deployed yet (`table_deploy`).
    NoTable,
    /// A gather request named a row beyond the deployed table.
    IdExceedsTable {
        /// The offending lookup id.
        id: u64,
        /// Deployed table rows.
        rows: u64,
    },
    /// No inputs are queued for the requested computation.
    NoInputs,
    /// The requested top-`k` exceeds the deployed category count.
    KExceedsCategories {
        /// Requested `k`.
        k: usize,
        /// Deployed categories `L`.
        categories: usize,
    },
    /// An error from the screening algorithm.
    Screen(ScreenError),
    /// An error from the SSD substrate.
    Ssd(SsdError),
    /// A configuration rejected by the validating builder.
    Config(crate::ConfigError),
    /// A serving-engine failure (worker thread or channel), with context.
    Serve(String),
    /// A malformed or inapplicable update batch.
    Update(ecssd_update::UpdateError),
    /// `commit_update`/`abort_update` was called with nothing staged.
    NoStagedUpdate,
    /// Crash recovery failed: no journal or armed snapshot to recover
    /// from, or the recovered epoch has no sealed functional image.
    Recovery(String),
    /// The request was shed by admission control or missed its deadline;
    /// the payload says which class was affected and why, so callers can
    /// observe (and react to) admission decisions instead of parsing a
    /// generic serving error.
    Rejected {
        /// QoS class of the rejected request.
        class: crate::QueryClass,
        /// Why it was rejected.
        reason: crate::RejectReason,
    },
}

impl std::fmt::Display for EcssdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcssdError::WrongMode { current } => {
                write!(f, "operation invalid in {current:?} mode")
            }
            EcssdError::NoWeights => write!(f, "no weights deployed"),
            EcssdError::NoTable => write!(f, "no embedding table deployed"),
            EcssdError::IdExceedsTable { id, rows } => {
                write!(f, "gather id {id} beyond the {rows}-row table")
            }
            EcssdError::NoInputs => write!(f, "no inputs queued"),
            EcssdError::KExceedsCategories { k, categories } => {
                write!(
                    f,
                    "top-{k} requested but only {categories} categories deployed"
                )
            }
            EcssdError::Screen(e) => write!(f, "screening error: {e}"),
            EcssdError::Ssd(e) => write!(f, "ssd error: {e}"),
            EcssdError::Config(e) => write!(f, "configuration error: {e}"),
            EcssdError::Serve(what) => write!(f, "serving engine error: {what}"),
            EcssdError::Update(e) => write!(f, "update error: {e}"),
            EcssdError::NoStagedUpdate => write!(f, "no staged update to commit or abort"),
            EcssdError::Recovery(what) => write!(f, "crash recovery failed: {what}"),
            EcssdError::Rejected { class, reason } => {
                write!(f, "{class} request rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for EcssdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EcssdError::Screen(e) => Some(e),
            EcssdError::Ssd(e) => Some(e),
            EcssdError::Config(e) => Some(e),
            EcssdError::Update(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ecssd_update::UpdateError> for EcssdError {
    fn from(e: ecssd_update::UpdateError) -> Self {
        EcssdError::Update(e)
    }
}

impl From<crate::ConfigError> for EcssdError {
    fn from(e: crate::ConfigError) -> Self {
        EcssdError::Config(e)
    }
}

impl From<ScreenError> for EcssdError {
    fn from(e: ScreenError) -> Self {
        EcssdError::Screen(e)
    }
}

impl From<SsdError> for EcssdError {
    fn from(e: SsdError) -> Self {
        EcssdError::Ssd(e)
    }
}

/// A deployed input batch awaiting screening/classification.
#[derive(Debug, Default)]
pub(crate) struct InputQueue {
    /// Original feature vectors (host side keeps them for verification).
    pub(crate) features: Vec<Vec<f32>>,
    /// Screening candidates per queued input, filled by `int4_screen`.
    pub(crate) candidates: Vec<Vec<usize>>,
}

/// The ECSSD device handle (Table 1 API).
///
/// Fields are `pub(crate)` so the online-update path
/// (`crate::update`) can stage version N+1 alongside the serving state.
#[derive(Debug)]
pub struct Ecssd {
    pub(crate) mode: EcssdMode,
    pub(crate) device: SsdDevice,
    pub(crate) clock: SimTime,
    pub(crate) weights: Option<DenseMatrix>,
    pub(crate) screener: Option<Screener>,
    /// First LPN of each weight row in flash.
    pub(crate) row_lpns: Vec<u64>,
    pub(crate) pages_per_row: u64,
    /// Deployed embedding table (the second in-storage task), if any.
    pub(crate) table: Option<DenseMatrix>,
    /// First LPN of each embedding-table row in flash.
    pub(crate) table_row_lpns: Vec<u64>,
    pub(crate) table_pages_per_row: u64,
    pub(crate) threshold: ThresholdPolicy,
    pub(crate) queue: InputQueue,
    pub(crate) results: Vec<Prediction>,
    /// LRU cache of recently fetched candidate FP32 rows in device DRAM.
    pub(crate) hot_cache: HotRowCache,
    pub(crate) cache_reserved: bool,
    pub(crate) queries: u64,
    pub(crate) batches: u64,
    /// Deployment version visible to queries (0 = nothing deployed).
    pub(crate) epoch: u64,
    /// Next never-used LPN for update writes (deploy leaves it at the end
    /// of the deployed rows).
    pub(crate) next_lpn: u64,
    /// LPNs trimmed by committed/aborted updates, reusable for staging.
    pub(crate) free_lpns: Vec<u64>,
    /// Version N+1 being built while queries are served from version N.
    pub(crate) staged: Option<crate::update::StagedUpdate>,
    /// Screener re-quantization policy for updates.
    pub(crate) update_policy: ecssd_update::UpdatePolicy,
    /// Scale-drift tracker for `RequantPolicy::InPlace`.
    pub(crate) drift: ecssd_update::ScaleDriftDetector,
    /// Functional images sealed at journaled commits (crash recovery).
    pub(crate) sealed_images: Vec<crate::recovery::SealedImage>,
    /// Unjournaled-mode durable baseline (see `arm_crash_snapshot`).
    pub(crate) crash_snapshot: Option<crate::recovery::CrashSnapshot>,
    /// One mark per committed epoch, for rows-lost accounting.
    pub(crate) commit_log: Vec<crate::recovery::CommitMark>,
    /// Journal append count that survived the last power cut.
    pub(crate) crash_bound: Option<u64>,
    /// Cumulative data+parity pages programmed by applied updates.
    pub(crate) update_programs: u64,
    /// Per-row candidate-access counts since the last
    /// [`Ecssd::take_row_accesses`] — the observed-hotness telemetry a
    /// control plane's estimator consumes. Sized at deployment, resized
    /// by committed `Add` ops.
    pub(crate) row_accesses: Vec<u64>,
}

impl Ecssd {
    /// Powers on a device in SSD mode.
    pub fn new(config: EcssdConfig) -> Self {
        let hot_cache = HotRowCache::new(config.ssd.hot_cache_bytes);
        Ecssd {
            mode: EcssdMode::Ssd,
            device: SsdDevice::new(config.ssd),
            clock: SimTime::ZERO,
            weights: None,
            screener: None,
            row_lpns: Vec::new(),
            pages_per_row: 1,
            table: None,
            table_row_lpns: Vec::new(),
            table_pages_per_row: 1,
            threshold: ThresholdPolicy::TopRatio(0.1),
            queue: InputQueue::default(),
            results: Vec::new(),
            hot_cache,
            cache_reserved: false,
            queries: 0,
            batches: 0,
            epoch: 0,
            next_lpn: 0,
            free_lpns: Vec::new(),
            staged: None,
            update_policy: ecssd_update::UpdatePolicy::default(),
            drift: ecssd_update::ScaleDriftDetector::new(2.0),
            sealed_images: Vec::new(),
            crash_snapshot: None,
            commit_log: Vec::new(),
            crash_bound: None,
            update_programs: 0,
            row_accesses: Vec::new(),
        }
    }

    /// `ECSSD_enable()`: switch to accelerator mode.
    pub fn enable(&mut self) {
        self.mode = EcssdMode::Accelerator;
    }

    /// `ECSSD_disable()`: switch back to SSD mode.
    pub fn disable(&mut self) {
        self.mode = EcssdMode::Ssd;
    }

    /// Current working mode.
    pub fn mode(&self) -> EcssdMode {
        self.mode
    }

    /// Simulated time consumed so far.
    pub fn elapsed(&self) -> SimTime {
        self.clock
    }

    /// The underlying SSD (e.g. for SSD-mode I/O in tests).
    pub fn device_mut(&mut self) -> &mut SsdDevice {
        &mut self.device
    }

    /// Read-only view of the underlying SSD.
    pub fn device(&self) -> &SsdDevice {
        &self.device
    }

    /// Installs a span-trace handle into the device's timed resources
    /// (flash array, DRAM interface, host link). Spans land in the handle's
    /// shared sink; see the `ecssd-trace` crate for attribution and export.
    pub fn set_tracer(&mut self, tracer: ecssd_trace::Tracer) {
        self.device.set_tracer(tracer);
    }

    pub(crate) fn require_accelerator(&self) -> Result<(), EcssdError> {
        if self.mode != EcssdMode::Accelerator {
            return Err(EcssdError::WrongMode { current: self.mode });
        }
        Ok(())
    }

    /// `Pre_align()`: host-side pre-alignment of a feature vector into
    /// CFP32 (weights are pre-aligned inside `weight_deploy`).
    ///
    /// # Errors
    ///
    /// Propagates CFP32 conversion errors (non-finite input).
    pub fn pre_align(features: &[f32]) -> Result<Cfp32Vector, ecssd_float::FloatError> {
        Cfp32Vector::from_f32(features)
    }

    /// `Weight_deploy()`: project + quantize the screener into device DRAM
    /// and write every FP32 weight row into NAND through the FTL.
    ///
    /// # Errors
    ///
    /// Fails when not in accelerator mode, when the INT4 matrix does not
    /// fit DRAM, or when the flash is out of space.
    pub fn weight_deploy(&mut self, weights: &DenseMatrix) -> Result<(), EcssdError> {
        self.weight_deploy_seeded(weights, 0x5eed)
    }

    /// [`Self::weight_deploy`] with an explicit seed for the JL projection
    /// that builds the INT4 screener. Deployment is otherwise identical;
    /// the seed only rotates the random projection, which lets tests and
    /// studies average screening recall over several projections instead
    /// of gating on one arbitrary draw.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::weight_deploy`].
    pub fn weight_deploy_seeded(
        &mut self,
        weights: &DenseMatrix,
        projection_seed: u64,
    ) -> Result<(), EcssdError> {
        self.require_accelerator()?;
        // Host ships the whole FP32 matrix + INT4 matrix over PCIe.
        let projector =
            Projector::paper_scale(weights.cols(), projection_seed).map_err(EcssdError::Screen)?;
        let screener = Screener::from_weights(weights, projector)?;
        let int4_bytes = screener.weights4().storage_bytes() as u64;
        self.device.dram_mut().reserve(int4_bytes)?;
        // The hot-row cache occupies DRAM alongside the INT4 matrix.
        if self.hot_cache.is_enabled() && !self.cache_reserved {
            self.device
                .dram_mut()
                .reserve(self.hot_cache.capacity_bytes())?;
            self.cache_reserved = true;
        }
        let page_bytes = self.device.config().geometry.page_bytes as u64;
        let fp32_row_bytes = 4 * weights.cols() as u64;
        self.pages_per_row = fp32_row_bytes.div_ceil(page_bytes);
        let host_done = self.device.host_mut().transfer(
            weights.rows() as u64 * fp32_row_bytes + int4_bytes,
            self.clock,
        );
        // A redeploy supersedes any half-built staged version, and every
        // previously deployed row image in the DRAM cache is now stale.
        if self.staged.is_some() {
            self.abort_update()?;
        }
        let old_rows: Vec<u64> = (0..self.row_lpns.len() as u64).collect();
        self.hot_cache.invalidate_rows(&old_rows);
        // Place rows through the FTL (consecutive LPNs; the machine-level
        // layout studies live in EcssdMachine).
        self.row_lpns.clear();
        let mut t = host_done;
        let mut lpn = 0u64;
        for _row in 0..weights.rows() {
            self.row_lpns.push(lpn);
            for _ in 0..self.pages_per_row {
                // The journaled write path: a no-op time-wise (and
                // identical placement-wise) when no journal is enabled.
                let (addr, jdone) = self.device.write_mapped(lpn, host_done)?;
                t = t
                    .max(self.device.flash_mut().program_page(addr, host_done))
                    .max(jdone);
                lpn += 1;
            }
        }
        self.clock = t;
        self.weights = Some(weights.clone());
        self.row_accesses = vec![0; weights.rows()];
        self.screener = Some(screener);
        self.next_lpn = lpn;
        self.free_lpns.clear();
        self.drift.reset();
        self.epoch += 1;
        let placed: Vec<u64> = (0..self.row_lpns.len() as u64).collect();
        self.record_commit(&placed, &[], weights.rows() as u64);
        Ok(())
    }

    /// `Filter_threshold()`: set the screening threshold policy.
    pub fn filter_threshold(&mut self, policy: ThresholdPolicy) -> Result<(), EcssdError> {
        self.require_accelerator()?;
        policy.validate()?;
        self.threshold = policy;
        Ok(())
    }

    /// `INT4_input_send()` + `CFP32_input_send()`: queue one input's 4-bit
    /// projected features and 32-bit pre-aligned features. The host sends
    /// both up front so screening and classification can pipeline.
    ///
    /// # Errors
    ///
    /// Fails outside accelerator mode or before weights are deployed.
    pub fn input_send(&mut self, features: &[f32]) -> Result<(), EcssdError> {
        self.require_accelerator()?;
        let screener = self.screener.as_ref().ok_or(EcssdError::NoWeights)?;
        // Validate dimensions eagerly (the projection will re-check).
        let _ = screener.prepare_input(features)?;
        let d = features.len() as u64;
        let k = screener.projected_dim() as u64;
        self.clock = self
            .device
            .host_mut()
            .transfer(4 * d + 1 + k.div_ceil(2), self.clock);
        self.queue.features.push(features.to_vec());
        Ok(())
    }

    /// `INT4_screen()`: run low-precision screening + threshold filtering
    /// for every queued input, charging DRAM traffic for the INT4 weights.
    ///
    /// # Errors
    ///
    /// Fails without deployed weights or queued inputs.
    pub fn int4_screen(&mut self) -> Result<(), EcssdError> {
        self.require_accelerator()?;
        let screener = self.screener.as_ref().ok_or(EcssdError::NoWeights)?;
        if self.queue.features.is_empty() {
            return Err(EcssdError::NoInputs);
        }
        let int4_bytes = screener.weights4().storage_bytes() as u64;
        self.queue.candidates.clear();
        let mut t = self.clock;
        for features in &self.queue.features {
            // Stream the INT4 matrix from DRAM for each input batch.
            t = self.device.dram_mut().transfer(int4_bytes, t);
            let cands = screener.screen(features, self.threshold)?;
            self.queue.candidates.push(cands);
        }
        self.clock = t;
        Ok(())
    }

    /// `CFP32_classify()`: fetch candidate rows from flash and run CFP32
    /// candidate-only classification, keeping the top `k` per input.
    ///
    /// # Errors
    ///
    /// Fails if `int4_screen` has not produced candidates.
    pub fn cfp32_classify(&mut self, k: usize) -> Result<(), EcssdError> {
        self.require_accelerator()?;
        let weights = self.weights.as_ref().ok_or(EcssdError::NoWeights)?;
        if self.queue.candidates.len() != self.queue.features.len()
            || self.queue.features.is_empty()
        {
            return Err(EcssdError::NoInputs);
        }
        let page_bytes = self.device.config().geometry.page_bytes as u64;
        let row_bytes = self.pages_per_row * page_bytes;
        let mut t = self.clock;
        let mut results = Vec::with_capacity(self.queue.features.len());
        for (features, cands) in self.queue.features.iter().zip(&self.queue.candidates) {
            // Timing: hot rows stream from the DRAM cache, the rest are
            // translated + batch-read from flash (and cached for next time).
            let mut addrs = Vec::with_capacity(cands.len() * self.pages_per_row as usize);
            let mut fetched: Vec<usize> = Vec::new();
            let mut hit_done = t;
            for &c in cands {
                if let Some(count) = self.row_accesses.get_mut(c) {
                    *count += 1;
                }
                if self.hot_cache.lookup(c as u64) {
                    hit_done = hit_done.max(self.device.dram_mut().transfer(row_bytes, t));
                    continue;
                }
                fetched.push(c);
                let first = self.row_lpns[c];
                for p in 0..self.pages_per_row {
                    addrs.push(self.device.ftl().translate(first + p)?);
                }
            }
            let batch = self.device.flash_mut().read_batch(&addrs, t);
            t = batch.done.max(hit_done);
            for &c in &fetched {
                self.hot_cache.insert(c as u64, row_bytes);
            }
            // Function: CFP32 candidate-only classification.
            let mut scores =
                candidate_only_classify(weights, features, cands, ClassifyPrecision::Cfp32)?;
            scores.truncate(k);
            results.push(Prediction {
                candidates: cands.clone(),
                top_k: scores,
            });
        }
        self.clock = t;
        self.results = results;
        self.queue.features.clear();
        self.queue.candidates.clear();
        Ok(())
    }

    /// `Get_results()`: drain the finished predictions, charging the return
    /// transfer.
    ///
    /// # Errors
    ///
    /// Fails outside accelerator mode.
    pub fn get_results(&mut self) -> Result<Vec<Prediction>, EcssdError> {
        self.require_accelerator()?;
        let bytes: u64 = self
            .results
            .iter()
            .map(|p| (p.top_k.len() * 8) as u64)
            .sum();
        self.clock = self.device.host_mut().transfer(bytes, self.clock);
        Ok(std::mem::take(&mut self.results))
    }

    /// Batch-first classification: queue, screen, classify and drain in one
    /// call — the primary inference entry point (also available through the
    /// [`Classifier`] trait).
    ///
    /// # Errors
    ///
    /// Fails with [`EcssdError::WrongMode`] outside accelerator mode,
    /// [`EcssdError::NoWeights`] before deployment, [`EcssdError::NoInputs`]
    /// on an empty batch, [`EcssdError::KExceedsCategories`] when `k`
    /// exceeds the deployed category count, and propagates screening/SSD
    /// errors. On error the input queue is cleared, so a failed batch never
    /// leaks into the next one.
    pub fn classify_batch(
        &mut self,
        inputs: &[Vec<f32>],
        k: usize,
    ) -> Result<Vec<Vec<Score>>, EcssdError> {
        self.require_accelerator()?;
        let categories = self.weights.as_ref().ok_or(EcssdError::NoWeights)?.rows();
        if inputs.is_empty() {
            return Err(EcssdError::NoInputs);
        }
        if k > categories {
            return Err(EcssdError::KExceedsCategories { k, categories });
        }
        let attempt = inputs
            .iter()
            .try_for_each(|x| self.input_send(x))
            .and_then(|()| self.int4_screen())
            .and_then(|()| self.cfp32_classify(k));
        if let Err(e) = attempt {
            self.queue.features.clear();
            self.queue.candidates.clear();
            return Err(e);
        }
        let predictions = self.get_results()?;
        self.queries += inputs.len() as u64;
        self.batches += 1;
        Ok(predictions.into_iter().map(|p| p.top_k).collect())
    }

    /// `Table_deploy()`: write every FP32 embedding-table row into NAND
    /// through the FTL, making the device a gather accelerator alongside
    /// (or instead of) the classifier. The table occupies fresh LPNs after
    /// whatever is already deployed; redeploying invalidates every cached
    /// table row image.
    ///
    /// # Errors
    ///
    /// Fails when not in accelerator mode or when the flash is out of
    /// space.
    pub fn table_deploy(&mut self, table: &DenseMatrix) -> Result<(), EcssdError> {
        self.require_accelerator()?;
        let page_bytes = self.device.config().geometry.page_bytes as u64;
        let row_bytes = 4 * table.cols() as u64;
        let pages_per_row = row_bytes.div_ceil(page_bytes);
        // The shared hot-row cache occupies DRAM; reserve it once even if
        // no classifier was ever deployed.
        if self.hot_cache.is_enabled() && !self.cache_reserved {
            self.device
                .dram_mut()
                .reserve(self.hot_cache.capacity_bytes())?;
            self.cache_reserved = true;
        }
        let host_done = self
            .device
            .host_mut()
            .transfer(table.rows() as u64 * row_bytes, self.clock);
        let old: Vec<u64> = (0..self.table_row_lpns.len() as u64)
            .map(|r| TABLE_KEY_TAG | r)
            .collect();
        self.hot_cache.invalidate_rows(&old);
        self.table_row_lpns.clear();
        let mut t = host_done;
        let mut lpn = self.next_lpn;
        for _row in 0..table.rows() {
            self.table_row_lpns.push(lpn);
            for _ in 0..pages_per_row {
                let (addr, jdone) = self.device.write_mapped(lpn, host_done)?;
                t = t
                    .max(self.device.flash_mut().program_page(addr, host_done))
                    .max(jdone);
                lpn += 1;
            }
        }
        self.next_lpn = lpn;
        self.clock = t;
        self.table_pages_per_row = pages_per_row;
        self.table = Some(table.clone());
        Ok(())
    }

    /// `Gather_batch()`: answer a batch of embedding-gather requests. Each
    /// request's looked-up rows are fetched from flash (hot rows stream
    /// from the shared DRAM cache) and pooled into one vector — the
    /// element-wise sum of the rows, accumulated in the order the ids
    /// appear in the request.
    ///
    /// # Errors
    ///
    /// Fails with [`EcssdError::NoTable`] before [`Self::table_deploy`],
    /// [`EcssdError::NoInputs`] on an empty batch, and
    /// [`EcssdError::IdExceedsTable`] when a lookup id is out of range.
    pub fn gather_batch(
        &mut self,
        requests: &[GatherRequest],
    ) -> Result<Vec<Vec<f32>>, EcssdError> {
        self.require_accelerator()?;
        let table = self.table.as_ref().ok_or(EcssdError::NoTable)?;
        if requests.is_empty() {
            return Err(EcssdError::NoInputs);
        }
        let rows = table.rows() as u64;
        let page_bytes = self.device.config().geometry.page_bytes as u64;
        let row_bytes = self.table_pages_per_row * page_bytes;
        let mut t = self.clock;
        let mut pooled = Vec::with_capacity(requests.len());
        for req in requests {
            // The host uploads the id list (8 B per id).
            t = self.device.host_mut().transfer(req.ids.len() as u64 * 8, t);
            let mut addrs = Vec::with_capacity(req.ids.len() * self.table_pages_per_row as usize);
            let mut fetched: Vec<u64> = Vec::new();
            let mut hit_done = t;
            for &id in &req.ids {
                if id >= rows {
                    return Err(EcssdError::IdExceedsTable { id, rows });
                }
                if self.hot_cache.lookup(TABLE_KEY_TAG | id) {
                    hit_done = hit_done.max(self.device.dram_mut().transfer(row_bytes, t));
                    continue;
                }
                fetched.push(id);
                let first = self.table_row_lpns[id as usize];
                for p in 0..self.table_pages_per_row {
                    addrs.push(self.device.ftl().translate(first + p)?);
                }
            }
            let batch = self.device.flash_mut().read_batch(&addrs, t);
            t = batch.done.max(hit_done);
            for &id in &fetched {
                self.hot_cache.insert(TABLE_KEY_TAG | id, row_bytes);
            }
            // Function: pool the looked-up rows, in request order.
            let mut vec = vec![0.0f32; table.cols()];
            for &id in &req.ids {
                for (acc, &w) in vec.iter_mut().zip(table.row(id as usize)) {
                    *acc += w;
                }
            }
            // Return transfer: one pooled vector per request.
            t = self.device.host_mut().transfer(4 * table.cols() as u64, t);
            pooled.push(vec);
        }
        self.clock = t;
        self.queries += requests.len() as u64;
        self.batches += 1;
        Ok(pooled)
    }

    /// Deployed embedding-table rows (0 before [`Self::table_deploy`]).
    pub fn table_rows(&self) -> usize {
        self.table.as_ref().map_or(0, DenseMatrix::rows)
    }

    /// The hot-row cache counters of this device.
    pub fn cache_stats(&self) -> ecssd_ssd::CacheStats {
        self.hot_cache.stats()
    }

    /// Deployed category count (0 before deployment). Grows when an
    /// update batch with `Add` ops commits.
    pub fn categories(&self) -> usize {
        self.weights.as_ref().map_or(0, DenseMatrix::rows)
    }

    /// Device-health summary: fault counters from the flash array plus
    /// FTL wear/GC totals and the update path's program traffic.
    pub fn health_report(&self) -> ecssd_ssd::HealthReport {
        let mut health = self.device.flash().health_report();
        health.absorb_wear(&self.device.ftl().wear(), &self.device.ftl().gc_totals());
        health.die_wear = Some(self.device.ftl().die_wear());
        health.update_programs = self.update_programs;
        health
    }

    /// Per-row candidate-access counts accumulated since the last
    /// [`Ecssd::take_row_accesses`] (indexed by global row id of this
    /// device; empty before deployment). Every candidate the CFP32 stage
    /// touches counts, hit or miss — the observed-hotness signal a
    /// control plane's estimator consumes.
    pub fn row_accesses(&self) -> &[u64] {
        &self.row_accesses
    }

    /// Drains the per-row access histogram: returns the counts since the
    /// previous take and resets them, so each control window observes its
    /// own traffic.
    pub fn take_row_accesses(&mut self) -> Vec<u64> {
        let drained = self.row_accesses.clone();
        for count in &mut self.row_accesses {
            *count = 0;
        }
        drained
    }

    /// Retunes the hot-row cache capacity at runtime, adjusting the DRAM
    /// reservation to match and evicting least-recently-used rows until
    /// the resident set fits (evictions are counted in
    /// [`ecssd_ssd::CacheStats`]). The control plane's cache-resize
    /// actuator.
    ///
    /// # Errors
    ///
    /// [`EcssdError::Ssd`] when DRAM cannot fit the grown reservation;
    /// the cache keeps its previous capacity in that case.
    pub fn set_cache_capacity(&mut self, bytes: u64) -> Result<(), EcssdError> {
        let current = self.hot_cache.capacity_bytes();
        if self.cache_reserved {
            if bytes > current {
                self.device.dram_mut().reserve(bytes - current)?;
            } else {
                self.device.dram_mut().release(current - bytes);
            }
        } else if bytes > 0 {
            self.device.dram_mut().reserve(bytes)?;
            self.cache_reserved = true;
        }
        self.hot_cache.set_capacity(bytes);
        Ok(())
    }

    /// Stages a placement-only rewrite of `rows` as version N+1: each row
    /// keeps its current values but is programmed into fresh pages through
    /// the PR 5 update path, so the re-placement's program/GC/parity
    /// traffic genuinely contends with version-N query reads on the flash
    /// timelines. Rows are deduplicated and staged in ascending order so
    /// identically-seeded runs stage identically. An empty `rows` still
    /// creates a (no-op) staged version, so a sharded engine can commit
    /// every shard in lockstep. Commit with [`Ecssd::commit_update`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Ecssd::stage_update`]; out-of-range rows fail
    /// validation there.
    pub fn reinterleave_stage(&mut self, rows: &[u64]) -> Result<UpdateReport, EcssdError> {
        let weights = self.weights.as_ref().ok_or(EcssdError::NoWeights)?;
        let source = self.staged.as_ref().map_or(weights, |s| &s.weights);
        let mut targets: Vec<u64> = rows.to_vec();
        targets.sort_unstable();
        targets.dedup();
        let mut batch = UpdateBatch::new(source.cols());
        for &row in &targets {
            let idx = usize::try_from(row).unwrap_or(usize::MAX);
            if idx >= source.rows() {
                return Err(EcssdError::Update(
                    ecssd_update::UpdateError::RowOutOfRange {
                        row: idx,
                        rows: source.rows(),
                    },
                ));
            }
            batch = batch
                .replace(idx, source.row(idx).to_vec())
                .map_err(EcssdError::Update)?;
        }
        self.stage_update(&batch)
    }

    /// Marks a detected-dead die as retired so reads to it fail fast
    /// instead of burning the full retry-ladder timeout — the control
    /// plane's die-retirement actuator (forwards to
    /// [`ecssd_ssd::FlashSim::retire_die`]; no-op without a fault plan).
    pub fn retire_die(&mut self, channel: usize, die: usize) {
        self.device.flash_mut().retire_die(channel, die);
    }
}

impl Classifier for Ecssd {
    fn deploy(&mut self, weights: &DenseMatrix) -> Result<(), EcssdError> {
        self.weight_deploy(weights)
    }

    fn classify_batch(
        &mut self,
        inputs: &[Vec<f32>],
        k: usize,
    ) -> Result<Vec<Vec<Score>>, EcssdError> {
        Ecssd::classify_batch(self, inputs, k)
    }

    fn elapsed(&self) -> SimTime {
        self.clock
    }

    fn stats(&self) -> ClassifierStats {
        ClassifierStats {
            devices: 1,
            categories: self.weights.as_ref().map_or(0, DenseMatrix::rows),
            queries: self.queries,
            batches: self.batches,
            cache: self.hot_cache.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecssd_screen::full_classify;

    fn small_device() -> Ecssd {
        Ecssd::new(EcssdConfig::tiny())
    }

    fn query(d: usize, phase: f32) -> Vec<f32> {
        (0..d).map(|i| ((i as f32) * 0.13 + phase).sin()).collect()
    }

    #[test]
    fn full_accelerator_flow() {
        let mut dev = small_device();
        dev.enable();
        let weights = DenseMatrix::random(256, 64, 9);
        dev.weight_deploy(&weights).unwrap();
        dev.filter_threshold(ThresholdPolicy::TopRatio(0.1))
            .unwrap();
        dev.input_send(&query(64, 0.0)).unwrap();
        dev.input_send(&query(64, 1.0)).unwrap();
        dev.int4_screen().unwrap();
        dev.cfp32_classify(5).unwrap();
        let results = dev.get_results().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].top_k.len(), 5);
        assert!(dev.elapsed() > SimTime::ZERO);
    }

    #[test]
    fn predictions_match_brute_force_on_separable_data() {
        let mut dev = small_device();
        dev.enable();
        let x = query(64, 0.5);
        let mut weights = DenseMatrix::random(256, 64, 10);
        for r in [3usize, 99, 200] {
            let row = weights.row_mut(r);
            for (rv, &xv) in row.iter_mut().zip(&x) {
                *rv = 1.8 * xv + 0.1 * *rv;
            }
        }
        dev.weight_deploy(&weights).unwrap();
        dev.input_send(&x).unwrap();
        dev.int4_screen().unwrap();
        dev.cfp32_classify(3).unwrap();
        let results = dev.get_results().unwrap();
        let reference = full_classify(&weights, &x, ClassifyPrecision::Fp32).unwrap();
        let got: Vec<usize> = results[0].top_k.iter().map(|s| s.category).collect();
        let want: Vec<usize> = reference.iter().take(3).map(|s| s.category).collect();
        assert_eq!(got, want, "screened top-3 must match brute force");
    }

    #[test]
    fn mode_gating() {
        let mut dev = small_device();
        // SSD mode rejects accelerator calls.
        assert!(matches!(
            dev.weight_deploy(&DenseMatrix::random(4, 8, 0)),
            Err(EcssdError::WrongMode { .. })
        ));
        dev.enable();
        assert_eq!(dev.mode(), EcssdMode::Accelerator);
        // Accelerator calls before deployment fail cleanly.
        assert!(matches!(
            dev.input_send(&[0.0; 8]),
            Err(EcssdError::NoWeights)
        ));
        assert!(matches!(dev.int4_screen(), Err(EcssdError::NoWeights)));
        dev.disable();
        assert_eq!(dev.mode(), EcssdMode::Ssd);
    }

    #[test]
    fn ssd_mode_still_serves_io() {
        let mut dev = small_device();
        let done = dev.device_mut().host_write(0, 4, SimTime::ZERO).unwrap();
        assert!(dev.device_mut().host_read(0, 4, done).is_ok());
    }

    #[test]
    fn screening_requires_inputs() {
        let mut dev = small_device();
        dev.enable();
        dev.weight_deploy(&DenseMatrix::random(64, 32, 2)).unwrap();
        assert!(matches!(dev.int4_screen(), Err(EcssdError::NoInputs)));
        assert!(matches!(dev.cfp32_classify(1), Err(EcssdError::NoInputs)));
    }

    #[test]
    fn pre_align_is_hosts_job() {
        let v = Ecssd::pre_align(&[1.0, 2.0, 4.0]).unwrap();
        assert_eq!(v.to_f32_vec(), vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn gather_pools_exactly_like_direct_lookup() {
        let mut dev = small_device();
        dev.enable();
        let table = DenseMatrix::random(128, 16, 77);
        dev.table_deploy(&table).unwrap();
        let ids = vec![3u64, 90, 3, 17];
        let pooled = dev
            .gather_batch(&[crate::GatherRequest::new(ids.clone())])
            .unwrap();
        let mut want = vec![0.0f32; table.cols()];
        for &id in &ids {
            for (acc, &w) in want.iter_mut().zip(table.row(id as usize)) {
                *acc += w;
            }
        }
        assert_eq!(pooled, vec![want], "gather must equal direct lookup");
        assert!(dev.elapsed() > SimTime::ZERO);
    }

    #[test]
    fn gather_reuses_the_hot_row_cache() {
        let config = EcssdConfig::tiny_builder()
            .hot_cache_bytes(1 << 20)
            .build()
            .unwrap();
        let mut dev = Ecssd::new(config);
        dev.enable();
        dev.table_deploy(&DenseMatrix::random(64, 8, 5)).unwrap();
        let req = crate::GatherRequest::new(vec![1, 2, 3]);
        dev.gather_batch(std::slice::from_ref(&req)).unwrap();
        let misses_after_first = dev.cache_stats().misses;
        dev.gather_batch(&[req]).unwrap();
        let stats = dev.cache_stats();
        assert_eq!(stats.misses, misses_after_first, "re-gather must hit");
        assert!(stats.hits >= 3);
    }

    #[test]
    fn tables_and_classifiers_coexist_on_one_device() {
        let mut dev = small_device();
        dev.enable();
        let weights = DenseMatrix::random(256, 64, 9);
        dev.weight_deploy(&weights).unwrap();
        dev.table_deploy(&DenseMatrix::random(64, 8, 6)).unwrap();
        let pooled = dev
            .gather_batch(&[crate::GatherRequest::new(vec![0, 63])])
            .unwrap();
        assert_eq!(pooled[0].len(), 8);
        let scores = dev.classify_batch(&[query(64, 0.2)], 3).unwrap();
        assert_eq!(scores[0].len(), 3);
    }

    #[test]
    fn gather_error_paths() {
        let mut dev = small_device();
        assert!(matches!(
            dev.gather_batch(&[crate::GatherRequest::new(vec![0])]),
            Err(EcssdError::WrongMode { .. })
        ));
        dev.enable();
        assert!(matches!(
            dev.gather_batch(&[crate::GatherRequest::new(vec![0])]),
            Err(EcssdError::NoTable)
        ));
        dev.table_deploy(&DenseMatrix::random(16, 4, 1)).unwrap();
        assert_eq!(dev.table_rows(), 16);
        assert!(matches!(dev.gather_batch(&[]), Err(EcssdError::NoInputs)));
        assert!(matches!(
            dev.gather_batch(&[crate::GatherRequest::new(vec![16])]),
            Err(EcssdError::IdExceedsTable { id: 16, rows: 16 })
        ));
    }
}
