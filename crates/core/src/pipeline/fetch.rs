//! The ECSSD classification per-tile stages: screener-weight streaming +
//! candidate selection, candidate row fetch (hot-row cache, interleaved
//! layout lookup, fault resolution), and FP32 classification.
//!
//! [`EcssdTileRun`] adapts one [`EcssdMachine`] window to the
//! [`TileTask`] trait so the shared scheduler
//! ([`run_tile_loop`](super::run_tile_loop)) drives it; the stage methods
//! on [`EcssdMachine`] own the resource timelines. The fetch half
//! ([`EcssdMachine::fetch_candidates`] and the post-fetch traffic
//! accounting) is task-generic and shared with the embedding-gather task
//! in [`super::gather`].

use ecssd_layout::{InterleavingStrategy, TileLayout};
use ecssd_ssd::{PageReadOutcome, PhysPageAddr, SimTime, SsdError};
use ecssd_trace::Stage;

use super::degrade::{self, FailedPage, TileFaultCtx};
use super::schedule::{RowSelection, TaskKind, TilePhase, TileTask};
use super::{DataPlacement, EcssdMachine, TileTiming};

/// Fixed scheduler/comparator latency charged per tile, ns.
pub(super) const TILE_CONTROL_NS: u64 = 200;

/// One query window of an [`EcssdMachine`], viewed as the classification
/// [`TileTask`]. Holds the per-query admission time the FP32 stage gates
/// on and the window's candidate-row count.
pub(crate) struct EcssdTileRun<'m> {
    machine: &'m mut EcssdMachine,
    /// When the current query's features arrived on-device.
    host_done: SimTime,
    /// Candidate rows selected across the window.
    pub(crate) candidate_rows: u64,
}

impl<'m> EcssdTileRun<'m> {
    pub(crate) fn new(machine: &'m mut EcssdMachine) -> Self {
        EcssdTileRun {
            machine,
            host_done: SimTime::ZERO,
            candidate_rows: 0,
        }
    }
}

impl TileTask for EcssdTileRun<'_> {
    fn kind(&self) -> TaskKind {
        TaskKind::Classification
    }

    fn begin_query(&mut self, _query: usize, issue: SimTime) -> SimTime {
        // Host sends the batch's CFP32 features (4 bytes + shared
        // exponent per vector) and INT4 projected features.
        let bench = *self.machine.source.benchmark();
        let batch = self.machine.config.accelerator.batch as u64;
        let k = bench.projected_dim() as u64;
        let d = bench.hidden as u64;
        let feature_bytes = batch * (4 * d + 1) + batch * k.div_ceil(2);
        self.host_done = self.machine.host.transfer(feature_bytes, issue);
        self.host_done
    }

    fn select_rows(&mut self, query: usize, tile: usize, issue: SimTime) -> RowSelection {
        let phase = self.machine.screen_stage(query, tile, issue);
        self.candidate_rows += phase.rows.len() as u64;
        phase
    }

    fn process_rows(
        &mut self,
        query: usize,
        tile: usize,
        rows: &[u64],
        select_done: SimTime,
        sync: Option<SimTime>,
    ) -> Result<TilePhase, SsdError> {
        self.machine
            .classify_stage(query, tile, rows, select_done, sync, self.host_done)
    }
}

/// Reusable per-tile fetch scratch owned by the machine, so the tile loop
/// stops allocating four vectors per tile. Contents are only meaningful
/// between a `fetch_candidates` call and the end of the `classify_stage`
/// that issued it.
#[derive(Debug, Default)]
pub(super) struct TileScratch {
    /// Candidate indices that went to NAND (cache misses), in fetch order.
    fetch_rows: Vec<usize>,
    /// Flat page address list of the misses (`fetch_rows × pages_per_row`).
    addrs: Vec<PhysPageAddr>,
    /// Candidate rows excluded from classification (skipped/unrecovered).
    row_dropped: Vec<bool>,
    /// Faulted page reads awaiting degradation-policy resolution.
    failed: Vec<FailedPage>,
}

impl EcssdMachine {
    /// Streams tile `tile`'s INT4 screener weights, runs screening and
    /// candidate selection. `issue` is the earliest the stream may start.
    fn screen_stage(&mut self, query: usize, tile: usize, issue: SimTime) -> RowSelection {
        let bench = *self.source.benchmark();
        let batch = self.config.accelerator.batch as u64;
        let k = bench.projected_dim() as u64;
        let channels = self.config.ssd.geometry.channels;
        let tiles_total = self.source.num_tiles();
        let range = self.source.tile_row_range(tile);
        let tile_len = (range.end - range.start) as usize;
        let int4_tile_bytes = tile_len as u64 * bench.int4_row_bytes();
        let int4_fetch_done = match self.variant.placement {
            DataPlacement::Heterogeneous => self.dram.transfer(int4_tile_bytes, issue),
            DataPlacement::Homogeneous => {
                // INT4 weights stream from flash, sharing the buses with
                // FP32 candidate traffic. Sequential storing co-locates
                // them with the tile's FP32 rows; the interleaved layouts
                // spread them over all buses.
                match self.variant.interleaving {
                    InterleavingStrategy::Sequential => {
                        let ch = (tile * channels / tiles_total).min(channels - 1);
                        self.flash.bus_transfer(ch, int4_tile_bytes, issue)
                    }
                    _ => {
                        let per = int4_tile_bytes / channels as u64;
                        let mut done = issue;
                        for ch in 0..channels {
                            done = done.max(self.flash.bus_transfer(ch, per, issue));
                        }
                        done
                    }
                }
            }
        };
        let int4_ops = 2 * k * tile_len as u64 * batch;
        let int4_done = self.int4.compute(int4_ops, int4_fetch_done);
        let screen_done = int4_done + TILE_CONTROL_NS;
        self.tracer
            .span(Stage::CandidateSelect, int4_done, screen_done);
        let candidates = self.source.candidates(query, tile);
        self.tracer
            .count("pipeline.candidate_rows", candidates.len() as u64);
        RowSelection {
            select_done: screen_done,
            rows: candidates,
        }
    }

    /// Fetches `cands` into a ping-pong bank. Rows resident in the hot
    /// cache stream from reserved device DRAM; only misses go to the
    /// flash channels. Faulted reads are resolved per the active
    /// [`DegradationPolicy`](super::DegradationPolicy).
    ///
    /// Fills the machine-owned [`TileScratch`] (miss rows, page addresses,
    /// dropped flags) instead of allocating per tile, and returns when the
    /// last candidate page reached the bank, recovery traffic included.
    pub(super) fn fetch_candidates(
        &mut self,
        query: usize,
        tile: usize,
        cands: &[u64],
        screen_done: SimTime,
        sync: Option<SimTime>,
    ) -> Result<SimTime, SsdError> {
        let bench = *self.source.benchmark();
        let page_bytes = self.config.ssd.geometry.page_bytes;
        let pages_per_row = bench.pages_per_row(page_bytes);
        let range = self.source.tile_row_range(tile);
        let cand_bytes = cands.len() as u64 * pages_per_row * page_bytes as u64;
        // Materialize the layout cache entry before the fetch loop borrows
        // it immutably (the former code cloned the layout here instead).
        self.tile_layout(tile);
        let bank = self.buffer.acquire(cand_bytes.max(1), screen_done)?;
        let row_bytes = pages_per_row * page_bytes as u64;
        self.tile_scratch.fetch_rows.clear();
        self.tile_scratch.addrs.clear();
        let mut hit_done = screen_done;
        // Pass A: cache lookups and DRAM hit traffic, in candidate order
        // (lookup order is part of the LRU state, so it must not change).
        for (ci, &row) in cands.iter().enumerate() {
            if self.hot_cache.lookup(row) {
                hit_done = hit_done.max(self.dram.transfer(row_bytes, screen_done));
                self.tracer.count("cache.hit_rows", 1);
                continue;
            }
            self.tile_scratch.fetch_rows.push(ci);
        }
        // Pass B: pure address computation for the misses under an
        // immutable borrow of the cached layout.
        let layout = &self.layouts[&tile];
        for i in 0..self.tile_scratch.fetch_rows.len() {
            let row = cands[self.tile_scratch.fetch_rows[i]];
            let local = (row - range.start) as usize;
            for p in 0..pages_per_row {
                let addr = self.row_page_addr(layout, row, local, p);
                self.tile_scratch.addrs.push(addr);
            }
        }
        // Sense commands go to the dies as soon as screening resolved the
        // addresses; data leaves the page registers once the ping-pong
        // bank is ours — and, with the paper's per-tile scheduler, once
        // the previous tile's transfers drained ("the final data access
        // time is decided by the busiest flash channel", §5.2).
        let gate = match sync {
            Some(prev_drain) => bank.max(prev_drain),
            None => bank,
        };
        let fetch = self
            .flash
            .read_batch_checked(&self.tile_scratch.addrs, screen_done, gate);
        // Read indices cover only the fetched (cache-miss) rows, so they
        // are remapped to candidate indices before recovery.
        let ppr = pages_per_row as usize;
        let mut fetch_done = fetch.done.max(hit_done);
        self.tile_scratch.row_dropped.clear();
        self.tile_scratch.row_dropped.resize(cands.len(), false);
        self.tile_scratch.failed.clear();
        for (i, o) in fetch.reads.iter().enumerate() {
            let (addr, detected, dead_die) = match *o {
                PageReadOutcome::Ok(_) => continue,
                PageReadOutcome::Uncorrectable { addr, detected } => (addr, detected, false),
                PageReadOutcome::DeadDie { addr, detected } => (addr, detected, true),
            };
            self.tile_scratch.failed.push(FailedPage {
                index: self.tile_scratch.fetch_rows[i / ppr] * ppr + i % ppr,
                addr,
                detected,
                dead_die,
            });
        }
        if !self.tile_scratch.failed.is_empty() {
            // Dead-die detections feed back into interleaving and
            // placement before any recovery traffic is issued.
            self.absorb_die_failures();
            let ctx = TileFaultCtx {
                query,
                tile,
                cands,
                pages_per_row,
                gate,
            };
            let geometry = self.config.ssd.geometry;
            fetch_done = fetch_done.max(degrade::resolve_failed_pages(
                &mut self.flash,
                geometry,
                self.variant.degradation,
                &ctx,
                &self.tile_scratch.failed,
                &mut self.tile_scratch.row_dropped,
                &mut self.ledger,
            )?);
        }
        Ok(fetch_done)
    }

    /// The FP32 phase of one tile: candidate fetch, FP32-traffic and
    /// cache accounting, candidate-only classification, and the result
    /// transfer back to the host.
    fn classify_stage(
        &mut self,
        query: usize,
        tile: usize,
        cands: &[u64],
        screen_done: SimTime,
        sync: Option<SimTime>,
        host_done: SimTime,
    ) -> Result<TilePhase, SsdError> {
        let fetch_done = self.fetch_candidates(query, tile, cands, screen_done, sync)?;
        let bench = *self.source.benchmark();
        let batch = self.config.accelerator.batch as u64;
        let d = bench.hidden as u64;
        let delivered = self.account_delivered_rows(cands);
        let flops = 2 * d * delivered * batch;
        let fp_issue = fetch_done.max(host_done);
        let fp_done = self.fp32.compute(flops, fp_issue);
        self.buffer.release(fp_done);

        if let Some(timings) = &mut self.tile_timings {
            timings.push(TileTiming {
                query,
                tile,
                candidates: cands.len(),
                screen_done,
                fetch_done,
                fp_done,
            });
        }
        // Results return to host: batch × candidates × 4 bytes.
        let result_done = self.host.transfer(batch * delivered * 4, fp_done);
        Ok(TilePhase {
            fetch_done,
            done: result_done,
        })
    }

    /// Post-fetch traffic and cache accounting shared by every task that
    /// fetches rows through [`EcssdMachine::fetch_candidates`]: only
    /// candidate pages that actually reached the buffer count as useful
    /// traffic (reconstruction peer reads occupy the buses but deliver no
    /// new candidate data; dropped rows deliver nothing), and rows that
    /// survived the NAND fetch become hot-cache residents for subsequent
    /// queries. Returns the number of rows delivered to the compute stage
    /// (cache hits included).
    pub(super) fn account_delivered_rows(&mut self, cands: &[u64]) -> u64 {
        let bench = *self.source.benchmark();
        let page_bytes = self.config.ssd.geometry.page_bytes;
        let pages_per_row = bench.pages_per_row(page_bytes);
        let ppr = pages_per_row as usize;
        let row_bytes = pages_per_row * page_bytes as u64;
        let per_page_ns = self.config.ssd.timing.page_transfer_ns(page_bytes);
        for fi in 0..self.tile_scratch.fetch_rows.len() {
            let ci = self.tile_scratch.fetch_rows[fi];
            if self.tile_scratch.row_dropped[ci] {
                continue;
            }
            for p in 0..ppr {
                let channel = self.tile_scratch.addrs[fi * ppr + p].channel;
                self.fp_busy[channel] += per_page_ns;
                self.fp_bytes[channel] += page_bytes as u64;
            }
            self.hot_cache.insert(cands[ci], row_bytes);
        }
        self.tile_scratch
            .row_dropped
            .iter()
            .filter(|&&dropped| !dropped)
            .count() as u64
    }

    /// The per-tile layout (computed on first use; health-weighted so the
    /// learned framework routes load away from degraded or dying
    /// channels — on a healthy device this is identical to the plain
    /// assignment).
    pub fn tile_layout(&mut self, tile: usize) -> &TileLayout {
        if !self.layouts.contains_key(&tile) {
            let channels = self.config.ssd.geometry.channels;
            let num_tiles = self.source.num_tiles();
            let range = self.source.tile_row_range(tile);
            let predicted = self.source.predicted_hotness(tile);
            let freq = if self.variant.training_queries > 0 {
                Some(
                    self.source
                        .training_frequency(tile, self.variant.training_queries),
                )
            } else {
                None
            };
            let weights = self.channel_health_weights();
            let mut profile = ecssd_layout::RowAccessProfile::predicted(&predicted);
            if let Some(freq) = freq.as_deref() {
                profile = profile.with_observed(freq);
            }
            let layout = self.variant.interleaving.assign_rows_with_health(
                tile,
                num_tiles,
                range.start,
                &profile,
                channels,
                &weights,
            );
            self.layouts.insert(tile, layout);
        }
        &self.layouts[&tile]
    }

    /// Physical address of page `page` of a tile-local candidate row,
    /// honoring the layout's channel and spreading rows over the
    /// channel's dies. Rows re-placed by an online update
    /// ([`EcssdMachine::apply_update`]) carry a placement version that
    /// salts the draw, so each update resolves to a fresh page set on the
    /// same channel.
    pub(super) fn row_page_addr(
        &self,
        layout: &TileLayout,
        global_row: u64,
        local_row: usize,
        page: u64,
    ) -> PhysPageAddr {
        let g = self.config.ssd.geometry;
        let channel = layout.channel_of(local_row);
        // Deterministic die/block placement derived from the row id; only
        // channel and die affect timing. Version 0 (never updated) keeps
        // the legacy mapping exactly.
        let version = self.row_versions.get(&global_row).copied().unwrap_or(0);
        let mut h = global_row.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (page << 7)
            ^ version.wrapping_mul(0xd1b5_4a32_d192_ed03);
        h ^= h >> 29;
        // Retired dies are skipped by hashing over the channel's surviving
        // dies; with no retirements this is the legacy `h % dies` mapping.
        let dead = &self.dead_per_channel[channel];
        let die = if dead.is_empty() || dead.len() >= g.dies_per_channel {
            (h % g.dies_per_channel as u64) as usize
        } else {
            let healthy: Vec<usize> = (0..g.dies_per_channel)
                .filter(|d| !dead.contains(d))
                .collect();
            healthy[(h % healthy.len() as u64) as usize]
        };
        let plane = ((h >> 8) % g.planes_per_die as u64) as usize;
        let block = ((h >> 16) % g.blocks_per_plane as u64) as usize;
        let pg = ((h >> 32) % g.pages_per_block as u64) as usize;
        PhysPageAddr {
            channel,
            die,
            plane,
            block,
            page: pg,
        }
    }

    /// Per-channel health weights for failure-aware interleaving: the
    /// fraction of the channel's dies still alive, scaled by any bandwidth
    /// derating. A healthy device is all-1.0.
    fn channel_health_weights(&self) -> Vec<f64> {
        let dies = self.config.ssd.geometry.dies_per_channel;
        (0..self.config.ssd.geometry.channels)
            .map(|ch| {
                let alive = dies - self.dead_per_channel[ch].len();
                let derate = self
                    .flash
                    .fault_plan()
                    .map(|p| p.derate_for(ch))
                    .unwrap_or(1.0);
                alive as f64 / dies as f64 * derate
            })
            .collect()
    }

    /// Folds newly detected die failures into the machine's health state.
    /// Only the learned framework has the health tracking to act on a
    /// detection: it retires the die (subsequent reads fail fast instead
    /// of timing out), remaps row placement onto the surviving dies, and
    /// re-weights the interleaving. The sequential and uniform baselines
    /// keep paying the full command-timeout ladder on every access.
    fn absorb_die_failures(&mut self) {
        let detected: Vec<(usize, usize)> = self.flash.detected_dead_dies().to_vec();
        if detected.len() == self.absorbed_dead {
            return;
        }
        for &(ch, die) in &detected[self.absorbed_dead..] {
            if matches!(self.variant.interleaving, InterleavingStrategy::Learned(_)) {
                self.flash.retire_die(ch, die);
                if !self.dead_per_channel[ch].contains(&die) {
                    self.dead_per_channel[ch].push(die);
                    self.dead_per_channel[ch].sort_unstable();
                }
                // Re-place subsequent tiles around the lost die.
                self.layouts.clear();
            }
        }
        self.absorbed_dead = detected.len();
    }
}
