//! The ECSSD execution pipeline: tile-by-tile, dual-precision, double
//! buffered (§4.5), decomposed into separately-testable stages.
//!
//! Per query batch and per weight tile:
//!
//! 1. the INT4 screener weights of the tile stream in — from device DRAM
//!    under the heterogeneous layout, or from the flash channels (sharing
//!    the buses with FP32 traffic) under the homogeneous baseline;
//! 2. the INT4 MAC array computes approximate scores, the comparator
//!    filters candidates;
//! 3. candidate FP32 (CFP32) weight rows are fetched from the flash
//!    channels into a ping-pong buffer bank;
//! 4. the FP32 MAC array runs candidate-only classification.
//!
//! All stages are timeline resources, so the ping-pong overlap of §4.5
//! (INT4 of tile *t+1* concurrent with FP32 of tile *t*, fetch of *t+1*
//! concurrent with compute of *t*) emerges from the dependency graph
//! rather than being hard-coded. The module splits along that graph:
//!
//! * [`schedule`] — the inter-tile dependency edges as data
//!   ([`SchedulePlan`]), the task-generic [`TileTask`] substrate trait,
//!   and the shared [`run_tile_loop`] driver (also used by the GenStore
//!   DES baseline in `ecssd-baselines`);
//! * [`fetch`](self) — the classification task's stage implementations:
//!   screener-weight streaming + candidate selection, candidate fetch
//!   through the hot-row cache and interleaved layout, FP32
//!   classification;
//! * [`gather`](self) — the RecSSD-style embedding-gather task: lookup-id
//!   routing, the same shared row fetch, pooling compute;
//! * [`degrade`](self) — the Fail/Retry/Reconstruct/Skip fault ladder;
//! * [`report`](self) — [`RunReport`] / [`TileTiming`] assembly.

use ecssd_float::MacCircuit;
use ecssd_layout::{InterleavingStrategy, TileLayout};
use ecssd_ssd::{
    Dram, FaultPlan, FlashSim, HealthReport, HostInterface, HotRowCache, PingPongBuffer, SsdError,
};
use ecssd_trace::{Stage, Tracer};
use ecssd_workloads::CandidateSource;
use serde::{Deserialize, Serialize};

use crate::{ComputeEngine, EcssdConfig};

mod degrade;
mod fetch;
mod gather;
mod report;
mod schedule;
mod update;

use degrade::DegradeLedger;
use fetch::EcssdTileRun;
use gather::GatherTileRun;

pub use report::{RunReport, TileTiming};
pub use schedule::{run_tile_loop, RowSelection, SchedulePlan, TaskKind, TilePhase, TileTask};

/// Where the INT4 screener weights live (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPlacement {
    /// ECSSD's heterogeneous layout: INT4 in device DRAM, FP32 in NAND.
    Heterogeneous,
    /// Baseline: both INT4 and FP32 weights in NAND flash; their transfers
    /// interfere on the channel buses.
    Homogeneous,
}

/// What the pipeline does when a candidate-row read comes back faulted
/// (uncorrectable ECC error or dead die).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationPolicy {
    /// Surface the fault as a typed error and abort the run. The right
    /// choice when any silent accuracy loss is unacceptable.
    #[default]
    Fail,
    /// Re-issue the failed page reads up to `max` more times. Recovers
    /// transient uncorrectable errors (a later attempt re-senses with
    /// fresh reference voltages); permanently failed pages that survive
    /// all attempts are dropped and counted as unrecovered.
    Retry {
        /// Maximum re-read attempts per failed page.
        max: u32,
    },
    /// Rebuild the lost page from its RAID-5 stripe peers (the other dies
    /// of the same channel, [`ecssd_layout::ParityScheme`]). Costs
    /// `stripe_width - 1` extra same-channel page reads per lost page;
    /// rows whose stripe peers also fail are counted as unrecovered.
    Reconstruct,
    /// Drop the affected candidate rows from classification and account
    /// the potential recall loss ([`EcssdMachine::skipped`]). Cheapest in
    /// time, pays in accuracy.
    Skip,
}

/// One architecture point: MAC circuit × placement × interleaving × overlap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineVariant {
    /// FP32 MAC circuit implementation.
    pub mac: MacCircuit,
    /// INT4/FP32 data placement.
    pub placement: DataPlacement,
    /// FP32 row interleaving over channels.
    pub interleaving: InterleavingStrategy,
    /// Whether the dual-module / ping-pong overlap of §4.5 is enabled
    /// (disabling it is the ablation of DESIGN.md §5).
    pub overlap: bool,
    /// Whether the scheduler drains one tile's candidate transfers before
    /// issuing the next tile's (§4.5 passes candidate addresses to the
    /// flash controllers tile by tile; §5.2: "the final data access time is
    /// decided by the busiest flash channel"). Disabling it models a more
    /// aggressive per-channel run-ahead scheduler — an ablation.
    pub per_tile_sync: bool,
    /// Training queries used to fine-tune hot degrees (0 disables the
    /// frequency signal even if the strategy asks for it).
    pub training_queries: usize,
    /// How the pipeline degrades when candidate reads fault (only
    /// observable when a [`FaultPlan`] is installed).
    pub degradation: DegradationPolicy,
}

impl MachineVariant {
    /// The full ECSSD design point.
    pub fn paper_ecssd() -> Self {
        MachineVariant {
            mac: MacCircuit::AlignmentFree,
            placement: DataPlacement::Heterogeneous,
            interleaving: InterleavingStrategy::Learned(Default::default()),
            overlap: true,
            per_tile_sync: true,
            training_queries: 24,
            degradation: DegradationPolicy::Fail,
        }
    }

    /// The Fig. 8 starting baseline: naive FP MAC, sequential storing,
    /// homogeneous placement.
    pub fn baseline_start() -> Self {
        MachineVariant {
            mac: MacCircuit::Naive,
            placement: DataPlacement::Homogeneous,
            interleaving: InterleavingStrategy::Sequential,
            overlap: true,
            per_tile_sync: true,
            training_queries: 0,
            degradation: DegradationPolicy::Fail,
        }
    }

    /// Sets the degradation policy (builder style).
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> Self {
        self.degradation = policy;
        self
    }

    /// The scheduler edges this variant enables (§4.5 as data).
    pub fn schedule_plan(&self) -> SchedulePlan {
        SchedulePlan::pipelined(self.overlap, self.per_tile_sync)
    }
}

/// The assembled ECSSD performance model.
pub struct EcssdMachine {
    config: EcssdConfig,
    variant: MachineVariant,
    source: Box<dyn CandidateSource>,
    flash: FlashSim,
    dram: Dram,
    /// Hot candidate-row cache held in reserved device DRAM: rows that hit
    /// skip their NAND fetch and stream from DRAM instead.
    hot_cache: HotRowCache,
    host: HostInterface,
    buffer: PingPongBuffer,
    int4: ComputeEngine,
    fp32: ComputeEngine,
    /// Cached per-tile layouts (keyed by tile index).
    layouts: std::collections::HashMap<usize, TileLayout>,
    /// FP32-only traffic accounting (bus busy ns, bytes) per channel.
    fp_busy: Vec<u64>,
    fp_bytes: Vec<u64>,
    /// Optional per-tile timing instrumentation.
    tile_timings: Option<Vec<TileTiming>>,
    /// Known-dead dies per channel (populated by the retirement path of
    /// the learned framework; empty vectors mean a healthy channel).
    dead_per_channel: Vec<Vec<usize>>,
    /// Dead-die detections already absorbed from the flash layer.
    absorbed_dead: usize,
    /// Per-row placement versions: rows touched by online updates resolve
    /// to a fresh page set (version 0 entries are never stored, so an
    /// update-free machine keeps the legacy address mapping bit-for-bit).
    row_versions: std::collections::HashMap<u64, u64>,
    /// Pages programmed by online updates (data + parity), accumulated
    /// into [`HealthReport::update_programs`].
    update_programs: u64,
    /// Applied-update count (the timing plane's deployment epoch).
    update_epoch: u64,
    /// Degradation-policy accounting (accumulated across runs, merged into
    /// [`RunReport::health`]).
    ledger: DegradeLedger,
    /// Reusable per-tile fetch scratch (see [`fetch::TileScratch`]), so the
    /// tile loop stops allocating per tile.
    tile_scratch: fetch::TileScratch,
    /// Span-trace handle shared with every timed resource (disabled by
    /// default; see [`EcssdMachine::enable_tracing`]).
    tracer: Tracer,
}

impl std::fmt::Debug for EcssdMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcssdMachine")
            .field("variant", &self.variant)
            .field("benchmark", &self.source.benchmark().abbrev)
            .finish_non_exhaustive()
    }
}

impl EcssdMachine {
    /// Builds the machine for one benchmark trace.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::DramCapacityExceeded`] when the heterogeneous
    /// layout is selected but the benchmark's INT4 screener matrix does
    /// not fit the configured device DRAM (the paper sizes DRAM so this
    /// holds for every paper benchmark, §7.1).
    pub fn new(
        config: EcssdConfig,
        variant: MachineVariant,
        source: Box<dyn CandidateSource>,
    ) -> Result<Self, SsdError> {
        let geometry = config.ssd.geometry;
        let flash = FlashSim::new(geometry, config.ssd.timing);
        let mut dram = Dram::new(
            config.ssd.dram_bytes,
            ecssd_ssd::Bandwidth::from_gbps(config.ssd.dram_gbps),
        );
        if variant.placement == DataPlacement::Heterogeneous {
            dram.reserve(source.benchmark().int4_matrix_bytes())?;
        }
        let hot_cache = HotRowCache::new(config.ssd.hot_cache_bytes);
        if hot_cache.is_enabled() {
            dram.reserve(hot_cache.capacity_bytes())?;
        }
        let accel = config.accelerator;
        Ok(EcssdMachine {
            buffer: PingPongBuffer::new(config.ssd.buffer_bytes),
            int4: ComputeEngine::new(accel.int4_gops()),
            fp32: ComputeEngine::new(accel.fp32_gflops(variant.mac)),
            flash,
            dram,
            hot_cache,
            host: HostInterface::pcie3_x4(),
            layouts: std::collections::HashMap::new(),
            fp_busy: vec![0; geometry.channels],
            fp_bytes: vec![0; geometry.channels],
            tile_timings: None,
            dead_per_channel: vec![Vec::new(); geometry.channels],
            absorbed_dead: 0,
            row_versions: std::collections::HashMap::new(),
            update_programs: 0,
            update_epoch: 0,
            ledger: DegradeLedger::default(),
            tile_scratch: fetch::TileScratch::default(),
            tracer: Tracer::disabled(),
            config,
            variant,
            source,
        })
    }

    /// Enables simulated-time span tracing and returns the shared handle.
    /// Subsequent [`RunReport`]s carry a per-stage
    /// [`StageBreakdown`](ecssd_trace::StageBreakdown), and the handle's
    /// spans can be exported with [`ecssd_trace::chrome_trace_json`].
    /// Tracing observes the timelines without perturbing them: a traced
    /// run reports the same times as an untraced one.
    pub fn enable_tracing(&mut self) -> Tracer {
        self.set_tracer(Tracer::enabled());
        self.tracer.clone()
    }

    /// Installs a span-trace handle into every timed pipeline resource
    /// (flash array, DRAM interface, host link, both MAC engines).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.flash.set_tracer(tracer.clone());
        self.dram.set_tracer(tracer.clone());
        self.host.set_tracer(tracer.clone());
        self.int4.set_tracer(tracer.clone(), Stage::Int4Screen);
        self.fp32.set_tracer(tracer.clone(), Stage::Fp32Mac);
        self.tracer = tracer;
    }

    /// The machine's trace handle (disabled unless tracing was enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs a deterministic fault plan on the underlying flash
    /// simulator. Subsequent runs draw faults from it; the active
    /// [`DegradationPolicy`] decides how the pipeline reacts.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a die outside the configured geometry.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.flash.set_fault_plan(plan);
    }

    /// Candidate rows dropped under [`DegradationPolicy::Skip`] (or left
    /// unrecovered by the other policies), as `(query, tile, global_row)`.
    /// Downstream recall-loss accounting compares these against the true
    /// top-k rows of each query.
    pub fn skipped(&self) -> &[(usize, usize, u64)] {
        &self.ledger.skipped
    }

    /// The device-health summary so far (flash-layer counters plus
    /// policy-level recovery accounting).
    pub fn health_report(&self) -> HealthReport {
        let mut health = self.flash.health_report();
        health.update_programs = self.update_programs;
        health.retried_reads = self.ledger.retried_reads;
        health.reconstructed_rows = self.ledger.reconstructed_rows;
        health.reconstruction_page_reads = self.ledger.reconstruction_page_reads;
        health.skipped_rows = self.ledger.skipped.len() as u64 - self.ledger.unrecovered_rows;
        health.unrecovered_rows = self.ledger.unrecovered_rows;
        health
    }

    /// Records a [`TileTiming`] for every (query, tile) processed by
    /// subsequent runs — the data behind pipeline-visualization tooling.
    pub fn enable_tile_timings(&mut self) {
        self.tile_timings = Some(Vec::new());
    }

    /// The recorded per-tile timings (empty unless enabled).
    pub fn tile_timings(&self) -> &[TileTiming] {
        self.tile_timings.as_deref().unwrap_or(&[])
    }

    /// The variant under test.
    pub fn variant(&self) -> &MachineVariant {
        &self.variant
    }

    /// The trace source.
    pub fn source(&self) -> &dyn CandidateSource {
        self.source.as_ref()
    }

    /// Runs `queries` query batches over the first `max_tiles` tiles of the
    /// matrix (use `usize::MAX` for all tiles). Returns the run report.
    ///
    /// The window is one [`run_tile_loop`] drive of the machine's
    /// classification [`TileTask`] view under the variant's
    /// [`SchedulePlan`].
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::BufferOverflow`] when a tile's candidates
    /// exceed one ping-pong bank, and — under [`DegradationPolicy::Fail`]
    /// only — [`SsdError::Uncorrectable`] / [`SsdError::DieFailed`] when
    /// an injected fault hits a candidate read. The other policies degrade
    /// gracefully and report through [`RunReport::health`].
    ///
    /// # Panics
    ///
    /// Panics if `queries == 0`.
    pub fn run_window(&mut self, queries: usize, max_tiles: usize) -> Result<RunReport, SsdError> {
        assert!(queries > 0, "need at least one query");
        let tiles_total = self.source.num_tiles();
        let tiles = tiles_total.min(max_tiles);
        let plan = self.variant.schedule_plan();
        let mut run = EcssdTileRun::new(self);
        let makespan = run_tile_loop(&mut run, plan, queries, tiles)?;
        let candidate_rows = run.candidate_rows;
        Ok(report::assemble(
            self,
            TaskKind::Classification,
            makespan,
            queries,
            tiles,
            tiles_total,
            candidate_rows,
        ))
    }

    /// Runs `queries` query batches over the whole matrix.
    ///
    /// # Errors
    ///
    /// See [`EcssdMachine::run_window`].
    pub fn run(&mut self, queries: usize) -> Result<RunReport, SsdError> {
        self.run_window(queries, usize::MAX)
    }

    /// Runs `queries` embedding-gather batches over the first `max_tiles`
    /// table tiles (use `usize::MAX` for all tiles): the machine's
    /// [`TaskKind::EmbeddingGather`] view under the same
    /// [`SchedulePlan`]. The trace source supplies each batch's lookup
    /// rows per tile; rows fetch through the shared hot-row-cache +
    /// interleaved-layout path and are pooled on the FP32 engine.
    ///
    /// # Errors
    ///
    /// See [`EcssdMachine::run_window`] — the fetch path (and therefore
    /// its error surface) is shared.
    ///
    /// # Panics
    ///
    /// Panics if `queries == 0`.
    pub fn run_gather_window(
        &mut self,
        queries: usize,
        max_tiles: usize,
    ) -> Result<RunReport, SsdError> {
        assert!(queries > 0, "need at least one query");
        let tiles_total = self.source.num_tiles();
        let tiles = tiles_total.min(max_tiles);
        let plan = self.variant.schedule_plan();
        let mut run = GatherTileRun::new(self);
        let makespan = run_tile_loop(&mut run, plan, queries, tiles)?;
        let gathered_rows = run.gathered_rows;
        Ok(report::assemble(
            self,
            TaskKind::EmbeddingGather,
            makespan,
            queries,
            tiles,
            tiles_total,
            gathered_rows,
        ))
    }

    /// Per-channel candidate access counts of one `(query, tile)` pair —
    /// the Fig. 11 measurement.
    pub fn tile_channel_loads(&mut self, query: usize, tile: usize) -> Vec<u64> {
        let range = self.source.tile_row_range(tile);
        let cands = self.source.candidates(query, tile);
        let layout = self.tile_layout(tile);
        let local: Vec<usize> = cands.iter().map(|&r| (r - range.start) as usize).collect();
        ecssd_layout::channel_loads(layout, &local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecssd_ssd::CacheStats;
    use ecssd_workloads::{Benchmark, SampledWorkload, TraceConfig};

    fn machine(variant: MachineVariant, bench: &str) -> EcssdMachine {
        let b = Benchmark::by_abbrev(bench).unwrap();
        let w = SampledWorkload::new(b, TraceConfig::paper_default());
        EcssdMachine::new(EcssdConfig::paper_default(), variant, Box::new(w)).unwrap()
    }

    fn window_report(variant: MachineVariant, bench: &str) -> RunReport {
        machine(variant, bench).run_window(3, 24).unwrap()
    }

    #[test]
    fn ecssd_outperforms_baseline() {
        let ecssd = window_report(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let base = window_report(MachineVariant::baseline_start(), "Transformer-W268K");
        let speedup = base.ns_per_query() / ecssd.ns_per_query();
        assert!(speedup > 5.0, "speedup {speedup}");
    }

    #[test]
    fn sequential_baseline_leaves_channels_idle() {
        let base = window_report(MachineVariant::baseline_start(), "Transformer-W268K");
        assert!(
            base.fp_channel_utilization < 0.15,
            "utilization {}",
            base.fp_channel_utilization
        );
        // Most channels never see FP32 traffic in a 24-tile window.
        assert!(base.fp_imbalance().idle_channels >= 6);
    }

    #[test]
    fn learned_interleaving_balances_fp_traffic() {
        let r = window_report(MachineVariant::paper_ecssd(), "Transformer-W268K");
        assert!(
            r.fp_imbalance().balance() > 0.9,
            "balance {}",
            r.fp_imbalance().balance()
        );
        assert!(
            r.fp_channel_utilization > 0.65,
            "utilization {}",
            r.fp_channel_utilization
        );
    }

    #[test]
    fn uniform_sits_between_sequential_and_learned() {
        let mk = |interleaving| MachineVariant {
            interleaving,
            ..MachineVariant::paper_ecssd()
        };
        let seq = window_report(mk(InterleavingStrategy::Sequential), "Transformer-W268K");
        let uni = window_report(mk(InterleavingStrategy::Uniform), "Transformer-W268K");
        let lrn = window_report(MachineVariant::paper_ecssd(), "Transformer-W268K");
        assert!(seq.ns_per_query() > uni.ns_per_query());
        assert!(uni.ns_per_query() > lrn.ns_per_query());
    }

    #[test]
    fn heterogeneous_beats_homogeneous() {
        let hetero = window_report(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let homo = window_report(
            MachineVariant {
                placement: DataPlacement::Homogeneous,
                ..MachineVariant::paper_ecssd()
            },
            "Transformer-W268K",
        );
        assert!(homo.ns_per_query() > hetero.ns_per_query() * 1.05);
        assert!(homo.dram_busy_ns < hetero.dram_busy_ns);
    }

    #[test]
    fn alignment_free_beats_naive_on_compute_bound_benchmarks() {
        // GNMT (D=1024) is compute-heavy at batch 16; the naive MAC stalls.
        let af = window_report(MachineVariant::paper_ecssd(), "GNMT-E32K");
        let naive = window_report(
            MachineVariant {
                mac: MacCircuit::Naive,
                ..MachineVariant::paper_ecssd()
            },
            "GNMT-E32K",
        );
        assert!(
            naive.ns_per_query() > af.ns_per_query() * 1.2,
            "naive {} vs af {}",
            naive.ns_per_query(),
            af.ns_per_query()
        );
    }

    #[test]
    fn overlap_ablation_slows_the_pipeline() {
        let on = window_report(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let off = window_report(
            MachineVariant {
                overlap: false,
                ..MachineVariant::paper_ecssd()
            },
            "Transformer-W268K",
        );
        assert!(
            off.ns_per_query() > on.ns_per_query() * 1.1,
            "no-overlap {} vs overlapped {}",
            off.ns_per_query(),
            on.ns_per_query()
        );
    }

    #[test]
    fn extrapolation_scales_with_tiles() {
        let mut m = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let r = m.run_window(2, 16).unwrap();
        let full = r.ns_per_query_full();
        assert!(full > r.ns_per_query() * 30.0, "523 tiles vs 16 simulated");
    }

    #[test]
    fn fig11_loads_are_more_balanced_under_learned() {
        let mut lrn = machine(MachineVariant::paper_ecssd(), "GNMT-E32K");
        let mut uni = machine(
            MachineVariant {
                interleaving: InterleavingStrategy::Uniform,
                training_queries: 0,
                ..MachineVariant::paper_ecssd()
            },
            "GNMT-E32K",
        );
        // Average the per-tile balance over several (query, tile) pairs;
        // any single tile is one random draw.
        let mut lb = 0.0;
        let mut ub = 0.0;
        let pairs = 24;
        for q in 0..4 {
            for t in 0..6 {
                let l = lrn.tile_channel_loads(q, t);
                let u = uni.tile_channel_loads(q, t);
                lb += ecssd_ssd::ImbalanceReport::from_loads(&l).balance();
                ub += ecssd_ssd::ImbalanceReport::from_loads(&u).balance();
            }
        }
        lb /= pairs as f64;
        ub /= pairs as f64;
        assert!(lb > ub + 0.1, "learned {lb} vs uniform {ub}");
    }

    #[test]
    fn tile_timings_record_the_pipeline_order() {
        let mut m = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        m.enable_tile_timings();
        let _ = m.run_window(1, 8).unwrap();
        let timings = m.tile_timings();
        assert_eq!(timings.len(), 8);
        for t in timings {
            assert!(t.screen_done <= t.fetch_done);
            assert!(t.fetch_done <= t.fp_done);
            assert!(t.candidates > 0);
        }
        // Screening runs ahead: by the last tile, its screen_done precedes
        // the previous tile's fp_done (dual-module overlap, §4.5).
        let last = &timings[7];
        let prev = &timings[6];
        assert!(last.screen_done < prev.fp_done);
    }

    #[test]
    fn works_at_100m_scale() {
        let mut m = machine(MachineVariant::paper_ecssd(), "XMLCNN-S100M");
        let r = m.run_window(1, 4).unwrap();
        assert_eq!(r.tiles_total, 195_313);
        assert!(r.ns_per_query_full() > 1e6);
    }

    #[test]
    fn hot_cache_serves_repeat_candidates_from_dram() {
        let bench = Benchmark::by_abbrev("Transformer-W268K").unwrap();
        let config = EcssdConfig::builder()
            .hot_cache_bytes(64 << 20)
            .build()
            .unwrap();
        let w = SampledWorkload::new(bench, TraceConfig::paper_default());
        let mut m = EcssdMachine::new(config, MachineVariant::paper_ecssd(), Box::new(w)).unwrap();
        let r = m.run_window(3, 16).unwrap();
        assert!(r.cache.hits > 0, "repeat candidates should hit the cache");
        assert!(r.cache.bytes_saved > 0);
        assert!(r.cache.resident_bytes > 0);
        // Cache hits shed NAND traffic vs the uncached run (same window);
        // a disabled cache reports all-zero counters.
        let base = machine(MachineVariant::paper_ecssd(), "Transformer-W268K")
            .run_window(3, 16)
            .unwrap();
        assert_eq!(base.cache, CacheStats::default());
        let cached_bytes: u64 = r.fp_channel_bytes.iter().sum();
        let base_fp: u64 = base.fp_channel_bytes.iter().sum();
        assert!(
            cached_bytes < base_fp,
            "cached {cached_bytes} vs base {base_fp}"
        );
    }

    // ---- online updates (timing plane) ---------------------------------

    #[test]
    fn online_update_charges_program_traffic_and_delays_the_next_window() {
        let mut clean = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let mut updated = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let _ = clean.run_window(2, 16).unwrap();
        let _ = updated.run_window(2, 16).unwrap();

        let rows: Vec<u64> = (0..200u64).map(|i| i * 131).collect();
        let up = updated.apply_update(&rows);
        assert_eq!(up.rows_replaced, 200);
        assert!(up.pages_programmed >= 200);
        assert!(up.parity.parity_programs > 0, "stripes must refresh parity");
        assert_eq!(updated.update_epoch(), 1);
        assert_eq!(up.epoch, 1);

        let a = clean.run_window(2, 16).unwrap();
        let b = updated.run_window(2, 16).unwrap();
        assert!(b.health.update_programs > 0);
        assert_eq!(a.health.update_programs, 0);
        assert!(
            b.makespan > a.makespan,
            "program/parity traffic must delay the next window ({:?} vs {:?})",
            a.makespan,
            b.makespan
        );
    }

    #[test]
    fn online_update_invalidates_cached_rows_and_replaces_pages() {
        let bench = Benchmark::by_abbrev("Transformer-W268K").unwrap();
        let config = EcssdConfig::builder()
            .hot_cache_bytes(64 << 20)
            .build()
            .unwrap();
        let w = SampledWorkload::new(bench, TraceConfig::paper_default());
        let mut m = EcssdMachine::new(config, MachineVariant::paper_ecssd(), Box::new(w)).unwrap();
        let warm = m.run_window(3, 16).unwrap();
        assert!(warm.cache.insertions > 0, "window must warm the cache");

        // Rows the first window demonstrably fetched: candidates of (0, 0)
        // (the workload is seeded, so a fresh instance replays them).
        let mut probe = SampledWorkload::new(bench, TraceConfig::paper_default());
        let rows = probe.candidates(0, 0);
        let up = m.apply_update(&rows);
        assert!(
            up.cache_invalidations > 0,
            "updating fetched rows must invalidate their cached images"
        );
        let r = m.run_window(1, 4).unwrap();
        assert_eq!(r.cache.invalidations, up.cache_invalidations);
    }

    // ---- fault injection & degradation ---------------------------------

    fn faulted_report(policy: DegradationPolicy, plan: FaultPlan) -> RunReport {
        let mut m = machine(
            MachineVariant::paper_ecssd().with_degradation(policy),
            "Transformer-W268K",
        );
        m.set_fault_plan(plan);
        m.run_window(2, 16).unwrap()
    }

    #[test]
    fn inert_fault_plan_leaves_the_run_byte_identical() {
        let clean = machine(MachineVariant::paper_ecssd(), "Transformer-W268K")
            .run_window(2, 16)
            .unwrap();
        let inert = faulted_report(DegradationPolicy::Fail, FaultPlan::with_seed(99));
        assert_eq!(clean, inert);
        assert!(inert.health.is_clean());
    }

    #[test]
    fn fail_policy_surfaces_a_typed_uecc_error() {
        let mut m = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        m.set_fault_plan(FaultPlan::with_seed(3).with_uecc(1.0));
        match m.run_window(1, 4) {
            Err(SsdError::Uncorrectable { .. }) => {}
            other => panic!("expected Uncorrectable, got {other:?}"),
        }
    }

    #[test]
    fn retry_policy_recovers_transient_uecc_without_losing_rows() {
        let plan = FaultPlan::with_seed(11).with_uecc(0.01);
        let r = faulted_report(DegradationPolicy::Retry { max: 4 }, plan);
        assert!(r.health.uecc_events > 0, "no fault ever fired");
        assert!(r.health.retried_reads > 0);
        assert_eq!(r.health.unrecovered_rows, 0);
        assert_eq!(r.health.skipped_rows, 0);
        // Recovery traffic costs time vs the fault-free run (same window).
        let clean = machine(MachineVariant::paper_ecssd(), "Transformer-W268K")
            .run_window(2, 16)
            .unwrap();
        assert!(r.ns_per_query() >= clean.ns_per_query());
    }

    #[test]
    fn reconstruct_policy_rebuilds_rows_from_stripe_peers() {
        let plan = FaultPlan::with_seed(11).with_uecc(0.01);
        let r = faulted_report(DegradationPolicy::Reconstruct, plan);
        assert!(r.health.reconstructed_rows > 0);
        // RAID-5 over the channel's dies: stripe_width - 1 peer reads per
        // lost page (rows are single-page on this benchmark).
        let w = EcssdConfig::paper_default().ssd.geometry.dies_per_channel as u64;
        assert!(r.health.reconstruction_page_reads >= r.health.reconstructed_rows * (w - 1));
        assert_eq!(r.health.skipped_rows, 0);
    }

    #[test]
    fn skip_policy_drops_rows_and_accounts_them() {
        let plan = FaultPlan::with_seed(11).with_uecc(0.01);
        let mut m = machine(
            MachineVariant::paper_ecssd().with_degradation(DegradationPolicy::Skip),
            "Transformer-W268K",
        );
        m.set_fault_plan(plan);
        let r = m.run_window(2, 16).unwrap();
        assert!(r.health.skipped_rows > 0);
        assert_eq!(r.health.skipped_rows, m.skipped().len() as u64);
        // Every skipped entry names a (query, tile) inside the window.
        for &(q, t, _row) in m.skipped() {
            assert!(q < 2 && t < 16);
        }
    }

    #[test]
    fn faulted_runs_replay_byte_identically() {
        let plan = FaultPlan::with_seed(77)
            .with_uecc(0.01)
            .with_retry_storms(0.02);
        let a = faulted_report(DegradationPolicy::Retry { max: 2 }, plan.clone());
        let b = faulted_report(DegradationPolicy::Retry { max: 2 }, plan);
        assert_eq!(a, b);
        assert_eq!(a.health, b.health);
    }

    #[test]
    fn learned_interleaving_retires_a_dead_die_and_routes_around_it() {
        // Channel 0: the sequential layout maps the first tiles there, so
        // both variants exercise the dead die.
        let plan = FaultPlan::with_seed(5).with_dead_die(0, 1);
        let mut m = machine(
            MachineVariant::paper_ecssd().with_degradation(DegradationPolicy::Skip),
            "Transformer-W268K",
        );
        m.set_fault_plan(plan.clone());
        let first = m.run_window(2, 16).unwrap();
        assert!(first.health.dead_dies.contains(&(0, 1)));
        // After detection + retirement, subsequent windows re-place rows on
        // the surviving dies: no further reads hit the dead die.
        let before = m.health_report().dead_die_reads;
        let _ = m.run_window(2, 16).unwrap();
        assert_eq!(m.health_report().dead_die_reads, before);

        // The sequential baseline has no health feedback: its layout keeps
        // addressing the dead die in every window.
        let mut seq = machine(
            MachineVariant {
                interleaving: InterleavingStrategy::Sequential,
                ..MachineVariant::paper_ecssd()
            }
            .with_degradation(DegradationPolicy::Skip),
            "Transformer-W268K",
        );
        seq.set_fault_plan(plan);
        let _ = seq.run_window(2, 16).unwrap();
        let before = seq.health_report().dead_die_reads;
        let _ = seq.run_window(2, 16).unwrap();
        assert!(seq.health_report().dead_die_reads > before);
    }

    #[test]
    fn tracing_is_an_observer_not_a_participant() {
        // A traced run must report the same simulated times as an untraced
        // one: tracing reads the timelines, it never perturbs them.
        let mut plain = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let mut traced = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let tracer = traced.enable_tracing();
        assert!(tracer.is_enabled());

        let a = plain.run_window(3, 24).unwrap();
        let mut b = traced.run_window(3, 24).unwrap();
        let breakdown = b.breakdown.take().expect("traced run carries a breakdown");
        assert_eq!(a.breakdown, None);
        assert_eq!(a, b, "tracing changed the simulated run");

        // Exclusive attribution covers the whole window: stage times plus
        // idle equal the makespan exactly.
        assert_eq!(
            breakdown.attributed_total_ns() + breakdown.idle_ns,
            breakdown.total_ns
        );
        assert!(breakdown.reconciles(0.01));
        assert_eq!(breakdown.dropped_spans, 0);
        // The pipeline exercises screening, selection, MAC, and flash.
        for stage in [
            Stage::Int4Screen,
            Stage::CandidateSelect,
            Stage::Fp32Mac,
            Stage::FlashRead,
        ] {
            let e = breakdown.entries.iter().find(|e| e.stage == stage);
            assert!(
                e.is_some_and(|e| e.busy_ns > 0),
                "no {stage} spans recorded"
            );
        }
    }

    #[test]
    fn traced_counters_match_report() {
        let mut m = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let tracer = m.enable_tracing();
        let r = m.run_window(3, 24).unwrap();
        let counters: std::collections::BTreeMap<String, u64> =
            tracer.counters().into_iter().collect();
        assert_eq!(
            counters.get("pipeline.candidate_rows").copied(),
            Some(r.candidate_rows)
        );
        assert_eq!(
            counters.get("cache.hit_rows").copied().unwrap_or(0),
            r.cache.hits
        );
    }
}
