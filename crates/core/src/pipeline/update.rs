//! Timing-plane model updates on the [`EcssdMachine`].
//!
//! The functional update path ([`crate::Ecssd::stage_update`]) owns the
//! payload: staged matrices, FTL writes, screener re-quantization. The
//! performance model has no weight payload — its workload is a trace — so
//! an update here is pure traffic: each touched row is *re-placed* onto a
//! fresh page set (same learned channel assignment, new die/plane/block
//! draw), the new pages and the RAID-5 parity of the touched stripes are
//! programmed on the shared flash timelines, the row's INT4 screener image
//! is rewritten in device DRAM, and the row is invalidated in the hot-row
//! cache. Windows run after the update read the new placement and queue
//! behind the program traffic — the read/write interference the update
//! study measures, now visible in [`RunReport`](super::RunReport) stage
//! breakdowns and health counters.

use ecssd_layout::ParityScheme;
use ecssd_ssd::SimTime;
use ecssd_update::{ParityRefreshModel, UpdateReport};

use super::EcssdMachine;

impl EcssdMachine {
    /// Applies an online weight update to the global rows `rows`: programs
    /// a fresh page set per row, refreshes the touched RAID-5 stripes,
    /// rewrites the rows' INT4 screener images in device DRAM, and
    /// invalidates the rows in the hot-row cache. Returns the traffic
    /// accounting; [`EcssdMachine::health_report`] accumulates the program
    /// counts across updates.
    ///
    /// # Panics
    ///
    /// Panics if a row id lies outside the benchmark's category range.
    pub fn apply_update(&mut self, rows: &[u64]) -> UpdateReport {
        let bench = *self.source.benchmark();
        let g = self.config.ssd.geometry;
        let ppr = bench.pages_per_row(g.page_bytes);
        let tiles = self.source.num_tiles();
        let total_rows = self.source.tile_row_range(tiles - 1).end;
        let mut report = UpdateReport::default();
        // Host ships the fresh FP32 rows plus their INT4 projections.
        let payload = rows.len() as u64 * (4 * bench.hidden as u64 + bench.int4_row_bytes());
        let mut t = self.host.transfer(payload, SimTime::ZERO);
        let mut new_pages = Vec::with_capacity(rows.len() * ppr as usize);
        let mut rep = None;
        for &row in rows {
            assert!(
                row < total_rows,
                "update row {row} out of range {total_rows}"
            );
            let tile = self.tile_of_row(row);
            let local = (row - self.source.tile_row_range(tile).start) as usize;
            // Re-placement: bump the row's version so subsequent reads (and
            // the programs below) resolve to a fresh page set. The channel
            // stays the learned interleaver's pick, so balance is kept.
            *self.row_versions.entry(row).or_insert(0) += 1;
            let layout = self.tile_layout(tile).clone();
            for p in 0..ppr {
                let addr = self.row_page_addr(&layout, row, local, p);
                rep.get_or_insert(addr);
                t = t.max(self.flash.program_page(addr, t));
                new_pages.push(row * ppr + p);
                report.pages_programmed += 1;
            }
            // The row's INT4 screener image is rewritten in device DRAM.
            t = self.dram.transfer(bench.int4_row_bytes(), t);
            report.rows_requantized += 1;
            report.rows_replaced += 1;
        }
        // RAID-5 read-modify-write of every touched stripe (§5.3 parity
        // over the channel's dies); degenerate single-die channels carry
        // no parity.
        if let Some(rep) = rep.filter(|_| g.dies_per_channel >= 2) {
            let cost = ParityRefreshModel::new(ParityScheme::new(g.dies_per_channel))
                .refresh_for_pages(&new_pages);
            for _ in 0..cost.page_reads {
                t = t.max(self.flash.read_page(rep, t).done);
            }
            for _ in 0..cost.parity_programs {
                t = t.max(self.flash.program_page(rep, t));
            }
            report.parity = cost;
        }
        // Staleness barrier: pre-update cached row images become
        // unreachable the moment the new placement serves.
        let inv_before = self.hot_cache.stats().invalidations;
        self.hot_cache.invalidate_rows(rows);
        report.cache_invalidations = self.hot_cache.stats().invalidations - inv_before;
        self.update_programs += report.pages_programmed + report.parity.parity_programs;
        self.update_epoch += 1;
        report.epoch = self.update_epoch;
        report.staged_at = t;
        report
    }

    /// The deployment epoch of the timing plane: the number of applied
    /// updates (0 = the initial deployment only).
    pub fn update_epoch(&self) -> u64 {
        self.update_epoch
    }

    /// Tile holding global row `row` (tiles partition the row space in
    /// order, so binary search over the tile starts).
    fn tile_of_row(&self, row: u64) -> usize {
        let tiles = self.source.num_tiles();
        let (mut lo, mut hi) = (0usize, tiles - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.source.tile_row_range(mid).end <= row {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}
