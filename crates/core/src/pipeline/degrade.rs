//! The Fail/Retry/Reconstruct/Skip degradation ladder (DESIGN.md §6),
//! extracted from the tile loop so each policy is testable against a bare
//! [`FlashSim`] — no machine, no workload, no scheduler.
//!
//! [`resolve_failed_pages`] is the single entry point: given the faulted
//! page reads of one tile, it issues whatever recovery traffic the active
//! [`DegradationPolicy`] calls for (re-reads, RAID-5 stripe-peer reads),
//! marks the candidate rows the policy could not save, and accumulates the
//! accounting the [`HealthReport`](ecssd_ssd::HealthReport) surfaces.

use ecssd_layout::ParityScheme;
use ecssd_ssd::{FlashSim, PageReadOutcome, PhysPageAddr, SimTime, SsdError, SsdGeometry};

use super::DegradationPolicy;

/// A candidate page read that came back faulted (degradation bookkeeping).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FailedPage {
    /// Index into the tile's flat address list (`cand × pages_per_row`).
    pub(crate) index: usize,
    pub(crate) addr: PhysPageAddr,
    /// When the fault was detected (ladder exhausted / timeout / status).
    pub(crate) detected: SimTime,
    pub(crate) dead_die: bool,
}

/// Degradation-policy accounting, accumulated across runs and merged into
/// the machine's [`HealthReport`](ecssd_ssd::HealthReport).
#[derive(Debug, Default)]
pub(crate) struct DegradeLedger {
    /// Failed page reads a later retry attempt recovered.
    pub(crate) retried_reads: u64,
    /// Candidate rows rebuilt from RAID-5 stripe peers.
    pub(crate) reconstructed_rows: u64,
    /// Extra same-channel page reads the rebuilds cost.
    pub(crate) reconstruction_page_reads: u64,
    /// Candidate rows no policy could save.
    pub(crate) unrecovered_rows: u64,
    /// Candidate rows dropped from classification, as
    /// `(query, tile, global_row)` — the input to recall-loss accounting.
    pub(crate) skipped: Vec<(usize, usize, u64)>,
}

impl DegradeLedger {
    /// Drops candidate row `row` from classification (idempotent per
    /// tile). `unrecovered` distinguishes rows a recovery policy lost from
    /// rows [`DegradationPolicy::Skip`] chose not to fetch.
    fn drop_row(
        &mut self,
        ctx: &TileFaultCtx<'_>,
        row: usize,
        row_dropped: &mut [bool],
        unrecovered: bool,
    ) {
        if row_dropped[row] {
            return;
        }
        row_dropped[row] = true;
        if unrecovered {
            self.unrecovered_rows += 1;
        }
        self.skipped.push((ctx.query, ctx.tile, ctx.cands[row]));
    }
}

/// The tile whose candidate reads faulted, as the ladder sees it.
pub(crate) struct TileFaultCtx<'a> {
    pub(crate) query: usize,
    pub(crate) tile: usize,
    /// Global row ids of the tile's candidates (`index / pages_per_row`
    /// of a [`FailedPage`] indexes into this).
    pub(crate) cands: &'a [u64],
    pub(crate) pages_per_row: u64,
    /// Bus gate recovery transfers inherit (the tile's ping-pong bank +
    /// per-tile sync gate).
    pub(crate) gate: SimTime,
}

/// Resolves faulted candidate pages per the active
/// [`DegradationPolicy`]. Returns the time the last recovery traffic
/// (re-reads, stripe-peer reads) completed; marks rows the policy could
/// not save in `row_dropped`.
///
/// # Errors
///
/// Under [`DegradationPolicy::Fail`], surfaces the first fault as
/// [`SsdError::Uncorrectable`] / [`SsdError::DieFailed`].
pub(crate) fn resolve_failed_pages(
    flash: &mut FlashSim,
    geometry: SsdGeometry,
    policy: DegradationPolicy,
    ctx: &TileFaultCtx<'_>,
    failed: &[FailedPage],
    row_dropped: &mut [bool],
    ledger: &mut DegradeLedger,
) -> Result<SimTime, SsdError> {
    let mut done = SimTime::ZERO;
    for f in failed {
        done = done.max(f.detected);
    }
    match policy {
        DegradationPolicy::Fail => Err(fail_error(&failed[0])),
        DegradationPolicy::Retry { max } => {
            Ok(done.max(retry(flash, max, ctx, failed, row_dropped, ledger)))
        }
        DegradationPolicy::Reconstruct => Ok(done.max(reconstruct(
            flash,
            geometry,
            ctx,
            failed,
            row_dropped,
            ledger,
        ))),
        DegradationPolicy::Skip => {
            let ppr = ctx.pages_per_row as usize;
            for f in failed {
                ledger.drop_row(ctx, f.index / ppr, row_dropped, false);
            }
            Ok(done)
        }
    }
}

/// [`DegradationPolicy::Fail`]: surface the first fault as a typed error.
fn fail_error(f: &FailedPage) -> SsdError {
    if f.dead_die {
        SsdError::DieFailed {
            channel: f.addr.channel,
            die: f.addr.die,
        }
    } else {
        SsdError::Uncorrectable {
            channel: f.addr.channel,
            die: f.addr.die,
        }
    }
}

/// [`DegradationPolicy::Retry`]: re-issue all failed pages together, up to
/// `max` more times. Uncorrectable errors are transient (a later attempt
/// re-senses with fresh reference voltages); dead dies keep failing.
/// Pages that survive every attempt drop their row as unrecovered.
fn retry(
    flash: &mut FlashSim,
    max: u32,
    ctx: &TileFaultCtx<'_>,
    failed: &[FailedPage],
    row_dropped: &mut [bool],
    ledger: &mut DegradeLedger,
) -> SimTime {
    let mut done = SimTime::ZERO;
    let mut pending: Vec<FailedPage> = failed.to_vec();
    for _ in 0..max {
        if pending.is_empty() {
            break;
        }
        let issue = pending
            .iter()
            .map(|f| f.detected)
            .max()
            .unwrap_or(SimTime::ZERO);
        let addrs: Vec<PhysPageAddr> = pending.iter().map(|f| f.addr).collect();
        let re = flash.read_batch_checked(&addrs, issue, issue.max(ctx.gate));
        done = done.max(re.done);
        let mut still = Vec::new();
        for (f, outcome) in pending.iter().zip(re.reads.iter()) {
            match *outcome {
                PageReadOutcome::Ok(_) => ledger.retried_reads += 1,
                PageReadOutcome::Uncorrectable { detected, .. } => {
                    still.push(FailedPage { detected, ..*f })
                }
                PageReadOutcome::DeadDie { detected, .. } => still.push(FailedPage {
                    detected,
                    dead_die: true,
                    ..*f
                }),
            }
        }
        pending = still;
    }
    let ppr = ctx.pages_per_row as usize;
    for f in &pending {
        ledger.drop_row(ctx, f.index / ppr, row_dropped, true);
    }
    done
}

/// [`DegradationPolicy::Reconstruct`]: rebuild each lost page from its
/// RAID-5 stripe peers — same channel, same page coordinate, the other
/// dies ([`ParityScheme`]) — and XOR them back together (XOR time is
/// negligible next to the page reads). Rows whose stripe peers also fault
/// drop as unrecovered.
fn reconstruct(
    flash: &mut FlashSim,
    geometry: SsdGeometry,
    ctx: &TileFaultCtx<'_>,
    failed: &[FailedPage],
    row_dropped: &mut [bool],
    ledger: &mut DegradeLedger,
) -> SimTime {
    let ppr = ctx.pages_per_row as usize;
    let mut done = SimTime::ZERO;
    if geometry.dies_per_channel < 2 {
        // No stripe peers to rebuild from.
        for f in failed {
            ledger.drop_row(ctx, f.index / ppr, row_dropped, true);
        }
        return done;
    }
    let mut touched: Vec<usize> = Vec::new();
    let scheme = ParityScheme::new(geometry.dies_per_channel);
    for f in failed {
        let row = f.index / ppr;
        if row_dropped[row] {
            continue;
        }
        if !touched.contains(&row) {
            touched.push(row);
        }
        let stripe = ((f.addr.plane * geometry.blocks_per_plane + f.addr.block)
            * geometry.pages_per_block
            + f.addr.page) as u64;
        let peer_addrs: Vec<PhysPageAddr> = scheme
            .peers_of(f.addr.die, stripe)
            .into_iter()
            .map(|die| PhysPageAddr { die, ..f.addr })
            .collect();
        ledger.reconstruction_page_reads += peer_addrs.len() as u64;
        let re = flash.read_batch_checked(&peer_addrs, f.detected, f.detected.max(ctx.gate));
        done = done.max(re.done);
        if !re.all_ok() {
            // A stripe peer faulted too: the row is gone.
            ledger.drop_row(ctx, row, row_dropped, true);
        }
    }
    ledger.reconstructed_rows += touched.iter().filter(|&&r| !row_dropped[r]).count() as u64;
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecssd_ssd::{FaultPlan, FlashTiming};

    fn flash(plan: Option<FaultPlan>) -> (FlashSim, SsdGeometry) {
        let g = SsdGeometry::tiny();
        let mut f = FlashSim::new(g, FlashTiming::paper_default());
        if let Some(p) = plan {
            f.set_fault_plan(p);
        }
        (f, g)
    }

    fn failed_page(index: usize, die: usize) -> FailedPage {
        FailedPage {
            index,
            addr: PhysPageAddr {
                channel: 0,
                die,
                plane: 0,
                block: 0,
                page: 0,
            },
            detected: SimTime::from_us(5),
            dead_die: false,
        }
    }

    fn ctx(cands: &[u64], pages_per_row: u64) -> TileFaultCtx<'_> {
        TileFaultCtx {
            query: 0,
            tile: 3,
            cands,
            pages_per_row,
            gate: SimTime::ZERO,
        }
    }

    fn resolve(
        policy: DegradationPolicy,
        plan: Option<FaultPlan>,
        cands: &[u64],
        failed: &[FailedPage],
    ) -> (Result<SimTime, SsdError>, Vec<bool>, DegradeLedger) {
        let (mut flash, geometry) = flash(plan);
        let mut row_dropped = vec![false; cands.len()];
        let mut ledger = DegradeLedger::default();
        let done = resolve_failed_pages(
            &mut flash,
            geometry,
            policy,
            &ctx(cands, 1),
            failed,
            &mut row_dropped,
            &mut ledger,
        );
        (done, row_dropped, ledger)
    }

    #[test]
    fn retry_recovers_transient_faults() {
        // A healthy flash answers every re-read: both rows survive.
        let failed = [failed_page(0, 0), failed_page(1, 1)];
        let (done, dropped, ledger) = resolve(
            DegradationPolicy::Retry { max: 2 },
            None,
            &[40, 41],
            &failed,
        );
        assert!(done.unwrap() > SimTime::from_us(5), "re-reads take time");
        assert_eq!(ledger.retried_reads, 2);
        assert_eq!(ledger.unrecovered_rows, 0);
        assert!(ledger.skipped.is_empty());
        assert_eq!(dropped, vec![false, false]);
    }

    #[test]
    fn retry_exhaustion_drops_the_row_as_unrecovered() {
        // Every re-read fails too: the ladder runs out of attempts.
        let plan = FaultPlan::with_seed(7).with_uecc(1.0);
        let failed = [failed_page(0, 0)];
        let (done, dropped, ledger) = resolve(
            DegradationPolicy::Retry { max: 3 },
            Some(plan),
            &[42],
            &failed,
        );
        assert!(done.is_ok());
        assert_eq!(ledger.retried_reads, 0);
        assert_eq!(ledger.unrecovered_rows, 1);
        assert_eq!(ledger.skipped, vec![(0, 3, 42)]);
        assert_eq!(dropped, vec![true]);
    }

    #[test]
    fn reconstruct_rebuilds_from_stripe_peers() {
        // tiny() has 2 dies per channel: one surviving peer per stripe.
        let failed = [failed_page(0, 0)];
        let (done, dropped, ledger) = resolve(DegradationPolicy::Reconstruct, None, &[42], &failed);
        assert!(done.unwrap() > SimTime::from_us(5), "peer reads take time");
        assert_eq!(ledger.reconstructed_rows, 1);
        assert_eq!(ledger.reconstruction_page_reads, 1);
        assert_eq!(ledger.unrecovered_rows, 0);
        assert_eq!(dropped, vec![false]);
    }

    #[test]
    fn reconstruct_with_a_failed_stripe_peer_loses_the_row() {
        // The only stripe peer (channel 0, die 1) is dead: the rebuild
        // reads it, fails, and the row is gone.
        let plan = FaultPlan::with_seed(7).with_dead_die(0, 1);
        let failed = [failed_page(0, 0)];
        let (done, dropped, ledger) =
            resolve(DegradationPolicy::Reconstruct, Some(plan), &[42], &failed);
        assert!(done.is_ok());
        assert_eq!(ledger.reconstructed_rows, 0);
        assert_eq!(ledger.reconstruction_page_reads, 1);
        assert_eq!(ledger.unrecovered_rows, 1);
        assert_eq!(ledger.skipped, vec![(0, 3, 42)]);
        assert_eq!(dropped, vec![true]);
    }

    #[test]
    fn skip_accounts_each_row_once_and_reads_nothing() {
        // Two failed pages of row 0 (pages_per_row = 2) plus one of row 1:
        // two skipped entries, no recovery traffic, no unrecovered count.
        let (mut flash, geometry) = flash(None);
        let cands = [7u64, 9];
        let failed = [failed_page(0, 0), failed_page(1, 1), failed_page(2, 0)];
        let mut dropped = vec![false; 2];
        let mut ledger = DegradeLedger::default();
        let done = resolve_failed_pages(
            &mut flash,
            geometry,
            DegradationPolicy::Skip,
            &ctx(&cands, 2),
            &failed,
            &mut dropped,
            &mut ledger,
        )
        .unwrap();
        assert_eq!(done, SimTime::from_us(5), "skip issues no reads");
        assert_eq!(ledger.skipped, vec![(0, 3, 7), (0, 3, 9)]);
        assert_eq!(ledger.unrecovered_rows, 0);
        assert_eq!(dropped, vec![true, true]);
    }

    #[test]
    fn fail_surfaces_typed_errors() {
        let failed = [failed_page(0, 1)];
        let (err, _, ledger) = resolve(DegradationPolicy::Fail, None, &[42], &failed);
        assert!(matches!(
            err,
            Err(SsdError::Uncorrectable { channel: 0, die: 1 })
        ));
        assert!(ledger.skipped.is_empty());

        let dead = [FailedPage {
            dead_die: true,
            ..failed_page(0, 1)
        }];
        let (err, _, _) = resolve(DegradationPolicy::Fail, None, &[42], &dead);
        assert!(matches!(
            err,
            Err(SsdError::DieFailed { channel: 0, die: 1 })
        ));
    }
}
