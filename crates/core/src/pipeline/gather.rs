//! The RecSSD-style embedding-gather task: route each batch's lookup ids
//! to the table tiles, fetch the looked-up rows over the shared hot-row
//! cache + interleaved-layout path, and pool them on the FP32 engine.
//!
//! Gather is the substrate's second [`TileTask`]: read-dominated with
//! trivial compute, so it stresses interleaving and the hot-row cache in
//! the opposite way from extreme classification. The select phase is
//! id routing (no INT4 screening, no screener-weight stream); the process
//! phase reuses [`EcssdMachine::fetch_candidates`] and the shared
//! post-fetch traffic accounting, then charges a multiply-free pooling
//! accumulate instead of a candidate-only GEMV.

use ecssd_ssd::{SimTime, SsdError};
use ecssd_trace::Stage;

use super::fetch::TILE_CONTROL_NS;
use super::schedule::{RowSelection, TaskKind, TilePhase, TileTask};
use super::{EcssdMachine, TileTiming};

/// Per-batch-element request descriptor bytes uploaded at admission
/// (lookup count, pooling op, result slot).
const GATHER_HEADER_BYTES: u64 = 16;

/// Bytes per lookup id streamed to the on-device router.
const LOOKUP_ID_BYTES: u64 = 8;

/// One gather window of an [`EcssdMachine`], viewed as the
/// [`TaskKind::EmbeddingGather`] task. Holds the per-query admission time
/// the pooling stage gates on and the window's gathered-row count.
pub(crate) struct GatherTileRun<'m> {
    machine: &'m mut EcssdMachine,
    /// When the current query's request descriptors arrived on-device.
    host_done: SimTime,
    /// Lookup rows routed across the window.
    pub(crate) gathered_rows: u64,
}

impl<'m> GatherTileRun<'m> {
    pub(crate) fn new(machine: &'m mut EcssdMachine) -> Self {
        GatherTileRun {
            machine,
            host_done: SimTime::ZERO,
            gathered_rows: 0,
        }
    }
}

impl TileTask for GatherTileRun<'_> {
    fn kind(&self) -> TaskKind {
        TaskKind::EmbeddingGather
    }

    fn begin_query(&mut self, _query: usize, issue: SimTime) -> SimTime {
        // Host sends the batch's request descriptors; the id lists
        // themselves stream per tile as the router consumes them.
        let batch = self.machine.config.accelerator.batch as u64;
        self.host_done = self
            .machine
            .host
            .transfer(batch * GATHER_HEADER_BYTES, issue);
        self.host_done
    }

    fn select_rows(&mut self, query: usize, tile: usize, issue: SimTime) -> RowSelection {
        let phase = self.machine.gather_select_stage(query, tile, issue);
        self.gathered_rows += phase.rows.len() as u64;
        phase
    }

    fn process_rows(
        &mut self,
        query: usize,
        tile: usize,
        rows: &[u64],
        select_done: SimTime,
        sync: Option<SimTime>,
    ) -> Result<TilePhase, SsdError> {
        self.machine
            .gather_stage(query, tile, rows, select_done, sync, self.host_done)
    }
}

impl EcssdMachine {
    /// The gather select phase: the host streams tile `tile`'s routed
    /// lookup ids and the on-device router resolves them against the
    /// table's tile map. No screener stream, no INT4 compute — selection
    /// cost is id transfer plus the fixed control latency.
    fn gather_select_stage(&mut self, query: usize, tile: usize, issue: SimTime) -> RowSelection {
        let rows = self.source.candidates(query, tile);
        let ids_done = self
            .host
            .transfer(rows.len() as u64 * LOOKUP_ID_BYTES, issue);
        let select_done = ids_done + TILE_CONTROL_NS;
        self.tracer
            .span(Stage::CandidateSelect, ids_done, select_done);
        self.tracer.count("pipeline.gather_rows", rows.len() as u64);
        RowSelection { select_done, rows }
    }

    /// The gather process phase: fetch the tile's looked-up rows through
    /// the shared cache/layout/fault path, pool them (one accumulate of
    /// each delivered row — `d` MACs per row, no multiplies against a
    /// weight matrix), and return the tile's partial pooled vectors.
    fn gather_stage(
        &mut self,
        query: usize,
        tile: usize,
        rows: &[u64],
        select_done: SimTime,
        sync: Option<SimTime>,
        host_done: SimTime,
    ) -> Result<TilePhase, SsdError> {
        let fetch_done = self.fetch_candidates(query, tile, rows, select_done, sync)?;
        let bench = *self.source.benchmark();
        let batch = self.config.accelerator.batch as u64;
        let d = bench.hidden as u64;
        let delivered = self.account_delivered_rows(rows);
        let flops = d * delivered;
        let fp_issue = fetch_done.max(host_done);
        let fp_done = self.fp32.compute(flops, fp_issue);
        self.buffer.release(fp_done);

        if let Some(timings) = &mut self.tile_timings {
            timings.push(TileTiming {
                query,
                tile,
                candidates: rows.len(),
                screen_done: select_done,
                fetch_done,
                fp_done,
            });
        }
        // A contributing tile returns its partial pooled vectors:
        // batch × d × 4 bytes. Tiles no request looked into return
        // nothing.
        let result_bytes = if delivered > 0 { batch * d * 4 } else { 0 };
        let result_done = self.host.transfer(result_bytes, fp_done);
        Ok(TilePhase {
            fetch_done,
            done: result_done,
        })
    }
}
