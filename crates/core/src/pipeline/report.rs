//! Run-report assembly: [`RunReport`] / [`TileTiming`] and the fold that
//! collects a window's resource counters into one record.

use ecssd_ssd::{CacheStats, HealthReport, ImbalanceReport, SimTime};
use ecssd_trace::StageBreakdown;
use serde::{Deserialize, Serialize};

use super::schedule::TaskKind;
use super::EcssdMachine;

/// Outcome of a pipeline run.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// End-to-end simulated time.
    pub makespan: SimTime,
    /// Query batches executed.
    pub queries: usize,
    /// Tiles simulated per query.
    pub tiles_simulated: usize,
    /// Tiles the full matrix would need per query.
    pub tiles_total: usize,
    /// Candidate rows fetched in total.
    pub candidate_rows: u64,
    /// Channel-bandwidth utilization of FP32 weight traffic only (the
    /// quantity Fig. 8 reports).
    pub fp_channel_utilization: f64,
    /// Per-channel FP32 bytes moved.
    pub fp_channel_bytes: Vec<u64>,
    /// INT4 engine busy time, ns.
    pub int4_busy_ns: u64,
    /// FP32 engine busy time, ns.
    pub fp32_busy_ns: u64,
    /// DRAM interface busy time, ns.
    pub dram_busy_ns: u64,
    /// Producer stalls waiting for a buffer bank, ns.
    pub buffer_stall_ns: u64,
    /// Fault and degradation accounting for the run (all-zero when no
    /// faults were injected or observed).
    pub health: HealthReport,
    /// Hot candidate-row cache counters (all-zero when
    /// `SsdConfig::hot_cache_bytes == 0`).
    pub cache: CacheStats,
    /// Per-stage simulated-time attribution over `[0, makespan]`, present
    /// when span tracing is on (see [`EcssdMachine::enable_tracing`]).
    /// `None` when tracing is disabled, so traced and untraced reports
    /// differ only in this field.
    pub breakdown: Option<StageBreakdown>,
    /// Which in-storage task the window executed. Defaults to
    /// [`TaskKind::Classification`] so reports serialized before the task
    /// abstraction deserialize unchanged.
    #[serde(default)]
    pub task: TaskKind,
}

/// Hand-written to match the derive output exactly for classification
/// reports — the 9 pre-task golden fixtures compare `{:#?}` renders
/// byte-for-byte — while still surfacing the [`RunReport::task`] tag for
/// every other task.
impl std::fmt::Debug for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("RunReport");
        s.field("makespan", &self.makespan)
            .field("queries", &self.queries)
            .field("tiles_simulated", &self.tiles_simulated)
            .field("tiles_total", &self.tiles_total)
            .field("candidate_rows", &self.candidate_rows)
            .field("fp_channel_utilization", &self.fp_channel_utilization)
            .field("fp_channel_bytes", &self.fp_channel_bytes)
            .field("int4_busy_ns", &self.int4_busy_ns)
            .field("fp32_busy_ns", &self.fp32_busy_ns)
            .field("dram_busy_ns", &self.dram_busy_ns)
            .field("buffer_stall_ns", &self.buffer_stall_ns)
            .field("health", &self.health)
            .field("cache", &self.cache)
            .field("breakdown", &self.breakdown);
        if self.task != TaskKind::Classification {
            s.field("task", &self.task);
        }
        s.finish()
    }
}

impl RunReport {
    /// Simulated nanoseconds per query batch over the simulated window.
    pub fn ns_per_query(&self) -> f64 {
        self.makespan.as_ns() as f64 / self.queries.max(1) as f64
    }

    /// Extrapolated nanoseconds per query batch over the full weight
    /// matrix (window time scaled by the tile ratio; valid because the
    /// pipeline is in steady state within the window).
    pub fn ns_per_query_full(&self) -> f64 {
        self.ns_per_query() * self.tiles_total as f64 / self.tiles_simulated.max(1) as f64
    }

    /// Imbalance of the per-channel FP32 byte loads.
    pub fn fp_imbalance(&self) -> ImbalanceReport {
        ImbalanceReport::from_loads(&self.fp_channel_bytes)
    }
}

/// Per-tile timing record (optional instrumentation; see
/// [`EcssdMachine::enable_tile_timings`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileTiming {
    /// Query batch index.
    pub query: usize,
    /// Tile index.
    pub tile: usize,
    /// Candidate rows this tile fetched.
    pub candidates: usize,
    /// When screening finished (candidates known).
    pub screen_done: SimTime,
    /// When the last candidate page arrived in the buffer bank.
    pub fetch_done: SimTime,
    /// When FP32 classification finished.
    pub fp_done: SimTime,
}

/// Folds the machine's resource counters into the window's [`RunReport`].
pub(crate) fn assemble(
    m: &EcssdMachine,
    task: TaskKind,
    makespan: SimTime,
    queries: usize,
    tiles_simulated: usize,
    tiles_total: usize,
    candidate_rows: u64,
) -> RunReport {
    let channels = m.config.ssd.geometry.channels;
    let total_fp_busy: u64 = m.fp_busy.iter().sum();
    RunReport {
        makespan,
        queries,
        tiles_simulated,
        tiles_total,
        candidate_rows,
        fp_channel_utilization: total_fp_busy as f64
            / (makespan.as_ns().max(1) as f64 * channels as f64),
        fp_channel_bytes: m.fp_bytes.clone(),
        int4_busy_ns: m.int4.busy_ns(),
        fp32_busy_ns: m.fp32.busy_ns(),
        dram_busy_ns: m.dram.busy_ns(),
        buffer_stall_ns: m.buffer.stall_ns(),
        health: m.health_report(),
        cache: m.hot_cache.stats(),
        breakdown: if m.tracer.is_enabled() {
            let mut b = StageBreakdown::attribute(&m.tracer.spans(), SimTime::ZERO, makespan);
            b.dropped_spans = m.tracer.dropped_spans();
            Some(b)
        } else {
            None
        },
        task,
    }
}
