//! The tile-loop scheduler: §4.5's dependency graph as data.
//!
//! [`SchedulePlan`] captures *what may overlap* — the row-selection
//! prefetch depth, the dual-module overlap, and the per-tile transfer
//! drain — as plain data instead of control flow. [`run_tile_loop`] walks
//! one query window over any [`TileTask`] implementation; the task owns
//! the resource timelines (buses, engines, buffers), the driver owns the
//! inter-tile dependencies. The scheduler is task-generic: extreme
//! classification ([`EcssdMachine`](super::EcssdMachine)), the GenStore-AP
//! DES baseline, and the RecSSD-style embedding gather all run through
//! this one driver — only the [`TileTask`] implementation differs.

use std::collections::VecDeque;

use ecssd_ssd::{SimTime, SsdError};
use serde::{Deserialize, Serialize};

/// How far the INT4 screening stage runs ahead of the FP32 stage in the
/// paper pipeline (§4.5: the 128 KB INT4 weight buffer double-buffers the
/// screener tiles).
pub const PAPER_PREFETCH: usize = 2;

/// The §4.5 tile dependency graph as data: which inter-tile edges exist,
/// not how to walk them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePlan {
    /// Dual-module / ping-pong overlap: when `false`, every stage of tile
    /// *t* additionally waits for tile *t−1* to complete end-to-end (the
    /// serial ablation of DESIGN.md §5).
    pub overlap: bool,
    /// Drain one tile's candidate transfers before issuing the next
    /// tile's (§5.2: "the final data access time is decided by the
    /// busiest flash channel"). When `true`, the driver hands each
    /// process step the previous tile's fetch-drain time.
    pub per_tile_sync: bool,
    /// Row selection runs this many tiles ahead of row processing; tile
    /// *t*'s selection stream additionally waits until tile
    /// *t − prefetch* has been consumed (the double-buffer capacity
    /// edge). `0` means no lookahead: each tile is selected and processed
    /// back to back.
    pub prefetch: usize,
}

impl SchedulePlan {
    /// The paper's pipelined schedule: prefetch-2 double buffering with
    /// the overlap/sync ablation switches exposed.
    pub fn pipelined(overlap: bool, per_tile_sync: bool) -> Self {
        SchedulePlan {
            overlap,
            per_tile_sync,
            prefetch: PAPER_PREFETCH,
        }
    }

    /// No lookahead: tile *t*'s selection and processing issue back to
    /// back in program order. Any serialization comes from the task's
    /// resource timelines, not from scheduler edges — the shape of a
    /// machine with no tile double buffering (the GenStore baselines).
    pub fn in_order() -> Self {
        SchedulePlan {
            overlap: true,
            per_tile_sync: false,
            prefetch: 0,
        }
    }
}

/// Which in-storage task a pipeline run executed. Tags
/// [`RunReport`](super::RunReport)s (see
/// [`RunReport::task`](super::RunReport::task)) so downstream
/// tooling can tell an extreme-classification window from an
/// embedding-gather window without inspecting the workload.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
#[non_exhaustive]
pub enum TaskKind {
    /// INT4-screen-then-CFP32-classify extreme classification (the ECSSD
    /// paper's workload).
    #[default]
    Classification,
    /// RecSSD-style embedding-table gather: fetch the looked-up rows and
    /// pool them (read-dominated, trivial compute).
    EmbeddingGather,
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskKind::Classification => write!(f, "classification"),
            TaskKind::EmbeddingGather => write!(f, "embedding-gather"),
        }
    }
}

/// Outcome of one tile's row-selection phase (INT4 screening for
/// classification; lookup-id routing for embedding gather).
#[derive(Debug, Clone)]
pub struct RowSelection {
    /// When the selected row set is known (e.g. screener stream + INT4
    /// compute + comparator latency).
    pub select_done: SimTime,
    /// Global row ids this tile feeds to the processing phase.
    pub rows: Vec<u64>,
}

/// Outcome of one tile's row fetch + processing phase.
#[derive(Debug, Clone, Copy)]
pub struct TilePhase {
    /// When the tile's row transfers drained (the gate for the next
    /// tile under [`SchedulePlan::per_tile_sync`]).
    pub fetch_done: SimTime,
    /// When the tile completed end-to-end (results back on the host).
    pub done: SimTime,
}

/// One in-storage task, viewed as the per-stage resource timing of one
/// machine. The trait splits a task into the two halves every tile-loop
/// task shares — *select* which rows a tile contributes, then *fetch and
/// process* them — while leaving what "select" and "process" mean to the
/// implementation (INT4 screening + FP32 classification for ECSSD,
/// lookup routing + pooling for embedding gather). Implementations
/// mutate their own resource timelines (buses, MAC engines, buffers) and
/// report completion times; the scheduler ([`run_tile_loop`]) supplies
/// the issue times that encode the inter-tile dependency graph.
pub trait TileTask {
    /// Which task this is, for the [`RunReport`](super::RunReport) tag.
    fn kind(&self) -> TaskKind;

    /// Admits query batch `query` (e.g. the host feature upload). `issue`
    /// is the serial cursor — [`SimTime::ZERO`] unless the plan disables
    /// overlap, in which case it is the previous tile's completion time.
    /// Returns the time the query's inputs are available on-device.
    fn begin_query(&mut self, query: usize, issue: SimTime) -> SimTime;

    /// Determines which of tile `tile`'s rows this query touches —
    /// streaming screener weights and running INT4 screening for
    /// classification, routing the query's lookup ids for gather.
    /// `issue` is the earliest the phase may start (query inputs ready,
    /// double-buffer slot free, serial cursor).
    fn select_rows(&mut self, query: usize, tile: usize, issue: SimTime) -> RowSelection;

    /// Fetches the selected `rows` and runs the task's compute for tile
    /// `tile`. `select_done` is when the row set became known; `sync`
    /// carries the previous tile's fetch-drain time when the plan's
    /// per-tile transfer sync is on, `None` otherwise.
    ///
    /// # Errors
    ///
    /// Task-defined: the ECSSD path surfaces buffer overflows and — under
    /// [`DegradationPolicy::Fail`](super::DegradationPolicy::Fail) —
    /// unrecovered read faults.
    fn process_rows(
        &mut self,
        query: usize,
        tile: usize,
        rows: &[u64],
        select_done: SimTime,
        sync: Option<SimTime>,
    ) -> Result<TilePhase, SsdError>;
}

/// Runs `queries` query batches over `tiles` tiles of `task` under
/// `plan`, interleaving select and process steps so prefetched selection
/// traffic and earlier tiles' row transfers share the task's buses the
/// way a real channel scheduler would. Returns the makespan.
///
/// # Errors
///
/// Propagates the first [`TileTask::process_rows`] error.
pub fn run_tile_loop<T: TileTask + ?Sized>(
    task: &mut T,
    plan: SchedulePlan,
    queries: usize,
    tiles: usize,
) -> Result<SimTime, SsdError> {
    let mut makespan = SimTime::ZERO;
    // Without overlap, each stage of each tile waits for the previous
    // tile to finish completely (the ablation point).
    let mut serial_cursor = SimTime::ZERO;
    for q in 0..queries {
        let host_done = task.begin_query(q, serial_cursor);
        makespan = makespan.max(host_done);
        let mut pending: VecDeque<RowSelection> = VecDeque::new();
        let mut select_history: Vec<SimTime> = Vec::with_capacity(tiles);
        let mut prev_fetch_done = SimTime::ZERO;
        for step in 0..tiles + plan.prefetch {
            // --- selection phase for tile `step` -----------------------
            if step < tiles {
                let t = step;
                // The double-buffer capacity edge: tile t's selection
                // stream may start once tile t - prefetch was consumed.
                let buffer_ready = if plan.prefetch > 0 && t >= plan.prefetch {
                    select_history[t - plan.prefetch]
                } else {
                    SimTime::ZERO
                };
                let issue = if plan.overlap {
                    host_done.max(buffer_ready)
                } else {
                    serial_cursor.max(host_done)
                };
                let phase = task.select_rows(q, t, issue);
                select_history.push(phase.select_done);
                pending.push_back(phase);
            }
            // --- processing phase for tile `step - prefetch` -----------
            if step < plan.prefetch {
                continue;
            }
            let t = step - plan.prefetch;
            let Some(selection) = pending.pop_front() else {
                unreachable!("selection stays `prefetch` tiles ahead");
            };
            let mut select_done = selection.select_done;
            if !plan.overlap {
                // Serial ablation: this tile's processing phase starts
                // only after the previous tile fully completed.
                select_done = select_done.max(serial_cursor);
            }
            let sync = if plan.per_tile_sync {
                Some(prev_fetch_done)
            } else {
                None
            };
            let phase = task.process_rows(q, t, &selection.rows, select_done, sync)?;
            prev_fetch_done = phase.fetch_done;
            makespan = makespan.max(phase.done);
            if !plan.overlap {
                serial_cursor = phase.done;
            }
        }
    }
    Ok(makespan)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every driver → task call with its issue/sync inputs and
    /// answers with fixed stage latencies.
    struct Mock {
        select_ns: u64,
        process_ns: u64,
        begins: Vec<(usize, SimTime)>,
        selects: Vec<(usize, usize, SimTime)>,
        processes: Vec<(usize, usize, SimTime, Option<SimTime>)>,
        /// Interleaved call order, `("s" | "c", tile)`.
        order: Vec<(&'static str, usize)>,
    }

    impl Mock {
        fn new(select_ns: u64, process_ns: u64) -> Self {
            Mock {
                select_ns,
                process_ns,
                begins: Vec::new(),
                selects: Vec::new(),
                processes: Vec::new(),
                order: Vec::new(),
            }
        }
    }

    impl TileTask for Mock {
        fn kind(&self) -> TaskKind {
            TaskKind::Classification
        }

        fn begin_query(&mut self, query: usize, issue: SimTime) -> SimTime {
            self.begins.push((query, issue));
            issue + 10
        }

        fn select_rows(&mut self, query: usize, tile: usize, issue: SimTime) -> RowSelection {
            self.selects.push((query, tile, issue));
            self.order.push(("s", tile));
            RowSelection {
                select_done: issue + self.select_ns,
                rows: vec![tile as u64],
            }
        }

        fn process_rows(
            &mut self,
            query: usize,
            tile: usize,
            rows: &[u64],
            select_done: SimTime,
            sync: Option<SimTime>,
        ) -> Result<TilePhase, SsdError> {
            // The driver must hand each tile its own selected row set.
            assert_eq!(rows, &[tile as u64]);
            self.processes.push((query, tile, select_done, sync));
            self.order.push(("c", tile));
            let done = select_done.max(sync.unwrap_or(SimTime::ZERO)) + self.process_ns;
            Ok(TilePhase {
                fetch_done: done,
                done,
            })
        }
    }

    #[test]
    fn selection_runs_prefetch_tiles_ahead() {
        let mut m = Mock::new(100, 1000);
        let plan = SchedulePlan::pipelined(true, false);
        run_tile_loop(&mut m, plan, 1, 5).unwrap();
        // Interleaved order: s0 s1 s2/c0 s3/c1 s4/c2 c3 c4.
        let expected = [
            ("s", 0),
            ("s", 1),
            ("s", 2),
            ("c", 0),
            ("s", 3),
            ("c", 1),
            ("s", 4),
            ("c", 2),
            ("c", 3),
            ("c", 4),
        ];
        assert_eq!(m.order, expected);
        // The capacity edge: tile 2 may stream only once tile 0 was
        // consumed (select_done of 0), tile 3 once tile 1 was.
        let s0_done = m.selects[0].2 + 100;
        let s1_done = m.selects[1].2 + 100;
        assert_eq!(m.selects[2].2, s0_done);
        assert_eq!(m.selects[3].2, s1_done);
    }

    #[test]
    fn in_order_plan_alternates_select_and_process() {
        let mut m = Mock::new(100, 1000);
        run_tile_loop(&mut m, SchedulePlan::in_order(), 1, 3).unwrap();
        let expected = [("s", 0), ("c", 0), ("s", 1), ("c", 1), ("s", 2), ("c", 2)];
        assert_eq!(m.order, expected);
        // No capacity edge, no serial edge: every selection issues at the
        // query-ready time.
        for &(_, _, issue) in &m.selects {
            assert_eq!(issue, SimTime::ZERO + 10);
        }
    }

    #[test]
    fn per_tile_sync_hands_process_the_previous_drain_time() {
        let mut m = Mock::new(100, 1000);
        run_tile_loop(&mut m, SchedulePlan::pipelined(true, true), 1, 3).unwrap();
        // First tile syncs on nothing; each later tile on its
        // predecessor's fetch-drain time.
        assert_eq!(m.processes[0].3, Some(SimTime::ZERO));
        for w in m.processes.windows(2) {
            let prev_done = w[0].2.max(w[0].3.unwrap()) + 1000;
            assert_eq!(w[1].3, Some(prev_done));
        }
        // Sync off: the driver passes no drain time at all.
        let mut free = Mock::new(100, 1000);
        run_tile_loop(&mut free, SchedulePlan::pipelined(true, false), 1, 3).unwrap();
        assert!(free.processes.iter().all(|c| c.3.is_none()));
    }

    #[test]
    fn serial_plan_chains_every_stage_through_the_cursor() {
        let mut m = Mock::new(100, 1000);
        let makespan = run_tile_loop(&mut m, SchedulePlan::pipelined(false, false), 1, 5).unwrap();
        // The cursor only advances when a tile processes, so the first
        // `prefetch` selections still issue at admission; every later
        // selection waits for the tile processed in the preceding step.
        // Selection of tile 3 (step 3) follows processing of tile 0
        // (step 2), and so on.
        let done0 = m.processes[0].2 + 1000;
        assert_eq!(m.selects[3].2, done0);
        let done1 = m.processes[1].2 + 1000;
        assert_eq!(m.selects[4].2, done1);
        // Processing of tile t+1 never starts before tile t completed.
        for w in m.processes.windows(2) {
            assert!(w[1].2 >= w[0].2 + 1000);
        }
        // And the serial cursor carries into the next query's admission.
        let mut two = Mock::new(100, 1000);
        run_tile_loop(&mut two, SchedulePlan::pipelined(false, false), 2, 1).unwrap();
        assert_eq!(two.begins[0].1, SimTime::ZERO);
        assert_eq!(two.begins[1].1, two.processes[0].2 + 1000);
        // Makespan is the last tile's completion.
        assert_eq!(makespan, m.processes[4].2 + 1000);
    }

    #[test]
    fn makespan_covers_admission_even_with_zero_tiles() {
        let mut m = Mock::new(1, 1);
        let makespan = run_tile_loop(&mut m, SchedulePlan::pipelined(true, true), 2, 0).unwrap();
        assert_eq!(m.selects.len(), 0);
        assert_eq!(m.processes.len(), 0);
        assert_eq!(makespan, SimTime::ZERO + 10);
    }

    #[test]
    fn task_kind_default_is_classification() {
        assert_eq!(TaskKind::default(), TaskKind::Classification);
        assert_eq!(TaskKind::Classification.to_string(), "classification");
        assert_eq!(TaskKind::EmbeddingGather.to_string(), "embedding-gather");
    }
}
