//! The tile-loop scheduler: §4.5's dependency graph as data.
//!
//! [`SchedulePlan`] captures *what may overlap* — the screening prefetch
//! depth, the dual-module INT4/FP32 overlap, and the per-tile transfer
//! drain — as plain data instead of control flow. [`run_tile_loop`] walks
//! one query window over any [`TileBackend`] substrate; the backend owns
//! the resource timelines (buses, engines, buffers), the driver owns the
//! inter-tile dependencies. The ECSSD device path
//! ([`EcssdMachine`](super::EcssdMachine)) and the GenStore-AP DES
//! baseline both run through this one driver.

use std::collections::VecDeque;

use ecssd_ssd::{SimTime, SsdError};

/// How far the INT4 screening stage runs ahead of the FP32 stage in the
/// paper pipeline (§4.5: the 128 KB INT4 weight buffer double-buffers the
/// screener tiles).
pub const PAPER_PREFETCH: usize = 2;

/// The §4.5 tile dependency graph as data: which inter-tile edges exist,
/// not how to walk them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePlan {
    /// Dual-module / ping-pong overlap: when `false`, every stage of tile
    /// *t* additionally waits for tile *t−1* to complete end-to-end (the
    /// serial ablation of DESIGN.md §5).
    pub overlap: bool,
    /// Drain one tile's candidate transfers before issuing the next
    /// tile's (§5.2: "the final data access time is decided by the
    /// busiest flash channel"). When `true`, the driver hands each
    /// classify step the previous tile's fetch-drain time.
    pub per_tile_sync: bool,
    /// Screening runs this many tiles ahead of classification; tile *t*'s
    /// screener stream additionally waits until tile *t − prefetch* has
    /// been consumed (the double-buffer capacity edge). `0` means no
    /// lookahead: each tile is screened and classified back to back.
    pub prefetch: usize,
}

impl SchedulePlan {
    /// The paper's pipelined schedule: prefetch-2 double buffering with
    /// the overlap/sync ablation switches exposed.
    pub fn pipelined(overlap: bool, per_tile_sync: bool) -> Self {
        SchedulePlan {
            overlap,
            per_tile_sync,
            prefetch: PAPER_PREFETCH,
        }
    }

    /// No lookahead: tile *t*'s screen and classify issue back to back in
    /// program order. Any serialization comes from the backend's resource
    /// timelines, not from scheduler edges — the shape of a machine with
    /// no tile double buffering (the GenStore baselines).
    pub fn in_order() -> Self {
        SchedulePlan {
            overlap: true,
            per_tile_sync: false,
            prefetch: 0,
        }
    }
}

/// Outcome of one tile's INT4 screening phase.
#[derive(Debug, Clone)]
pub struct ScreenPhase {
    /// When the candidate set is known (screener stream + INT4 compute +
    /// comparator latency).
    pub screen_done: SimTime,
    /// Global row ids of the candidates this tile feeds to FP32.
    pub candidates: Vec<u64>,
}

/// Outcome of one tile's candidate fetch + FP32 classification phase.
#[derive(Debug, Clone, Copy)]
pub struct TilePhase {
    /// When the tile's candidate transfers drained (the gate for the next
    /// tile under [`SchedulePlan::per_tile_sync`]).
    pub fetch_done: SimTime,
    /// When the tile completed end-to-end (results back on the host).
    pub done: SimTime,
}

/// What a tile-loop substrate provides: the per-stage resource timing of
/// one machine. Implementations mutate their own resource timelines
/// (buses, MAC engines, buffers) and report completion times; the
/// scheduler ([`run_tile_loop`]) supplies the issue times that encode the
/// inter-tile dependency graph.
pub trait TileBackend {
    /// Admits query batch `query` (e.g. the host feature upload). `issue`
    /// is the serial cursor — [`SimTime::ZERO`] unless the plan disables
    /// overlap, in which case it is the previous tile's completion time.
    /// Returns the time the query's inputs are available on-device.
    fn begin_query(&mut self, query: usize, issue: SimTime) -> SimTime;

    /// Streams tile `tile`'s screener weights and runs INT4 screening +
    /// candidate selection. `issue` is the earliest the stream may start
    /// (query inputs ready, double-buffer slot free, serial cursor).
    fn screen_tile(&mut self, query: usize, tile: usize, issue: SimTime) -> ScreenPhase;

    /// Fetches `candidates` and runs FP32 classification for tile `tile`.
    /// `screen_done` is when the candidate set became known; `sync`
    /// carries the previous tile's fetch-drain time when the plan's
    /// per-tile transfer sync is on, `None` otherwise.
    ///
    /// # Errors
    ///
    /// Backend-defined: the ECSSD path surfaces buffer overflows and — under
    /// [`DegradationPolicy::Fail`](super::DegradationPolicy::Fail) —
    /// unrecovered read faults.
    fn classify_tile(
        &mut self,
        query: usize,
        tile: usize,
        candidates: &[u64],
        screen_done: SimTime,
        sync: Option<SimTime>,
    ) -> Result<TilePhase, SsdError>;
}

/// Runs `queries` query batches over `tiles` tiles of `backend` under
/// `plan`, interleaving screen and classify steps so prefetched screener
/// traffic and earlier tiles' candidate transfers share the backend's
/// buses the way a real channel scheduler would. Returns the makespan.
///
/// # Errors
///
/// Propagates the first [`TileBackend::classify_tile`] error.
pub fn run_tile_loop<B: TileBackend + ?Sized>(
    backend: &mut B,
    plan: SchedulePlan,
    queries: usize,
    tiles: usize,
) -> Result<SimTime, SsdError> {
    let mut makespan = SimTime::ZERO;
    // Without overlap, each stage of each tile waits for the previous
    // tile to finish completely (the ablation point).
    let mut serial_cursor = SimTime::ZERO;
    for q in 0..queries {
        let host_done = backend.begin_query(q, serial_cursor);
        makespan = makespan.max(host_done);
        let mut pending: VecDeque<ScreenPhase> = VecDeque::new();
        let mut screen_history: Vec<SimTime> = Vec::with_capacity(tiles);
        let mut prev_fetch_done = SimTime::ZERO;
        for step in 0..tiles + plan.prefetch {
            // --- screening phase for tile `step` ----------------------
            if step < tiles {
                let t = step;
                // The double-buffer capacity edge: tile t's screener
                // stream may start once tile t - prefetch was consumed.
                let buffer_ready = if plan.prefetch > 0 && t >= plan.prefetch {
                    screen_history[t - plan.prefetch]
                } else {
                    SimTime::ZERO
                };
                let issue = if plan.overlap {
                    host_done.max(buffer_ready)
                } else {
                    serial_cursor.max(host_done)
                };
                let phase = backend.screen_tile(q, t, issue);
                screen_history.push(phase.screen_done);
                pending.push_back(phase);
            }
            // --- classification phase for tile `step - prefetch` ------
            if step < plan.prefetch {
                continue;
            }
            let t = step - plan.prefetch;
            let Some(screen) = pending.pop_front() else {
                unreachable!("screening stays `prefetch` tiles ahead");
            };
            let mut screen_done = screen.screen_done;
            if !plan.overlap {
                // Serial ablation: this tile's FP32 phase starts only
                // after the previous tile fully completed.
                screen_done = screen_done.max(serial_cursor);
            }
            let sync = if plan.per_tile_sync {
                Some(prev_fetch_done)
            } else {
                None
            };
            let phase = backend.classify_tile(q, t, &screen.candidates, screen_done, sync)?;
            prev_fetch_done = phase.fetch_done;
            makespan = makespan.max(phase.done);
            if !plan.overlap {
                serial_cursor = phase.done;
            }
        }
    }
    Ok(makespan)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every driver → backend call with its issue/sync inputs and
    /// answers with fixed stage latencies.
    struct Mock {
        screen_ns: u64,
        classify_ns: u64,
        begins: Vec<(usize, SimTime)>,
        screens: Vec<(usize, usize, SimTime)>,
        classifies: Vec<(usize, usize, SimTime, Option<SimTime>)>,
        /// Interleaved call order, `("s" | "c", tile)`.
        order: Vec<(&'static str, usize)>,
    }

    impl Mock {
        fn new(screen_ns: u64, classify_ns: u64) -> Self {
            Mock {
                screen_ns,
                classify_ns,
                begins: Vec::new(),
                screens: Vec::new(),
                classifies: Vec::new(),
                order: Vec::new(),
            }
        }
    }

    impl TileBackend for Mock {
        fn begin_query(&mut self, query: usize, issue: SimTime) -> SimTime {
            self.begins.push((query, issue));
            issue + 10
        }

        fn screen_tile(&mut self, query: usize, tile: usize, issue: SimTime) -> ScreenPhase {
            self.screens.push((query, tile, issue));
            self.order.push(("s", tile));
            ScreenPhase {
                screen_done: issue + self.screen_ns,
                candidates: vec![tile as u64],
            }
        }

        fn classify_tile(
            &mut self,
            query: usize,
            tile: usize,
            candidates: &[u64],
            screen_done: SimTime,
            sync: Option<SimTime>,
        ) -> Result<TilePhase, SsdError> {
            // The driver must hand each tile its own candidate set.
            assert_eq!(candidates, &[tile as u64]);
            self.classifies.push((query, tile, screen_done, sync));
            self.order.push(("c", tile));
            let done = screen_done.max(sync.unwrap_or(SimTime::ZERO)) + self.classify_ns;
            Ok(TilePhase {
                fetch_done: done,
                done,
            })
        }
    }

    #[test]
    fn screening_runs_prefetch_tiles_ahead() {
        let mut m = Mock::new(100, 1000);
        let plan = SchedulePlan::pipelined(true, false);
        run_tile_loop(&mut m, plan, 1, 5).unwrap();
        // Interleaved order: s0 s1 s2/c0 s3/c1 s4/c2 c3 c4.
        let expected = [
            ("s", 0),
            ("s", 1),
            ("s", 2),
            ("c", 0),
            ("s", 3),
            ("c", 1),
            ("s", 4),
            ("c", 2),
            ("c", 3),
            ("c", 4),
        ];
        assert_eq!(m.order, expected);
        // The capacity edge: tile 2 may stream only once tile 0 was
        // consumed (screen_done of 0), tile 3 once tile 1 was.
        let s0_done = m.screens[0].2 + 100;
        let s1_done = m.screens[1].2 + 100;
        assert_eq!(m.screens[2].2, s0_done);
        assert_eq!(m.screens[3].2, s1_done);
    }

    #[test]
    fn in_order_plan_alternates_screen_and_classify() {
        let mut m = Mock::new(100, 1000);
        run_tile_loop(&mut m, SchedulePlan::in_order(), 1, 3).unwrap();
        let expected = [("s", 0), ("c", 0), ("s", 1), ("c", 1), ("s", 2), ("c", 2)];
        assert_eq!(m.order, expected);
        // No capacity edge, no serial edge: every screen issues at the
        // query-ready time.
        for &(_, _, issue) in &m.screens {
            assert_eq!(issue, SimTime::ZERO + 10);
        }
    }

    #[test]
    fn per_tile_sync_hands_classify_the_previous_drain_time() {
        let mut m = Mock::new(100, 1000);
        run_tile_loop(&mut m, SchedulePlan::pipelined(true, true), 1, 3).unwrap();
        // First tile syncs on nothing; each later tile on its
        // predecessor's fetch-drain time.
        assert_eq!(m.classifies[0].3, Some(SimTime::ZERO));
        for w in m.classifies.windows(2) {
            let prev_done = w[0].2.max(w[0].3.unwrap()) + 1000;
            assert_eq!(w[1].3, Some(prev_done));
        }
        // Sync off: the driver passes no drain time at all.
        let mut free = Mock::new(100, 1000);
        run_tile_loop(&mut free, SchedulePlan::pipelined(true, false), 1, 3).unwrap();
        assert!(free.classifies.iter().all(|c| c.3.is_none()));
    }

    #[test]
    fn serial_plan_chains_every_stage_through_the_cursor() {
        let mut m = Mock::new(100, 1000);
        let makespan = run_tile_loop(&mut m, SchedulePlan::pipelined(false, false), 1, 5).unwrap();
        // The cursor only advances when a tile classifies, so the first
        // `prefetch` screens still issue at admission; every later screen
        // waits for the tile classified in the preceding step. Screen of
        // tile 3 (step 3) follows classify of tile 0 (step 2), and so on.
        let done0 = m.classifies[0].2 + 1000;
        assert_eq!(m.screens[3].2, done0);
        let done1 = m.classifies[1].2 + 1000;
        assert_eq!(m.screens[4].2, done1);
        // Classify of tile t+1 never starts before tile t completed.
        for w in m.classifies.windows(2) {
            assert!(w[1].2 >= w[0].2 + 1000);
        }
        // And the serial cursor carries into the next query's admission.
        let mut two = Mock::new(100, 1000);
        run_tile_loop(&mut two, SchedulePlan::pipelined(false, false), 2, 1).unwrap();
        assert_eq!(two.begins[0].1, SimTime::ZERO);
        assert_eq!(two.begins[1].1, two.classifies[0].2 + 1000);
        // Makespan is the last tile's completion.
        assert_eq!(makespan, m.classifies[4].2 + 1000);
    }

    #[test]
    fn makespan_covers_admission_even_with_zero_tiles() {
        let mut m = Mock::new(1, 1);
        let makespan = run_tile_loop(&mut m, SchedulePlan::pipelined(true, true), 2, 0).unwrap();
        assert_eq!(m.screens.len(), 0);
        assert_eq!(m.classifies.len(), 0);
        assert_eq!(makespan, SimTime::ZERO + 10);
    }
}
