//! Crash consistency for the accelerator: power loss, journaled recovery,
//! and background scrubbing on the [`Ecssd`] device.
//!
//! The device keeps its FTL metadata in volatile controller DRAM. A power
//! cut ([`Ecssd::power_cut`]) discards everything volatile — queued
//! inputs, staged updates, the hot-row cache, and (without a journal) the
//! L2P table itself. With journaling enabled
//! ([`Ecssd::enable_journal`]), every FTL mutation on the deploy/update
//! paths flows through the device's journaled write path, each commit
//! seals an epoch with an atomic group flush, and
//! [`Ecssd::recover`] replays the durable log back into a consistent
//! serving state whose epoch is never ahead of the last durable commit.
//! Without a journal, recovery falls back to the last armed snapshot
//! ([`Ecssd::arm_crash_snapshot`]) and every commit since is lost — the
//! quantified cost a journal exists to prevent.

use std::collections::BTreeSet;

use ecssd_screen::{DenseMatrix, Screener};
use ecssd_ssd::{Ftl, JournalConfig, JournalRecord, ScrubReport};

use crate::api::{Ecssd, EcssdError, InputQueue};

/// A functional image (weights + screener) sealed at a journaled commit.
///
/// The FTL journal recovers *placements*; the weight values themselves are
/// host-owned data that the host can re-supply for any committed epoch.
/// Sealing a clone at commit time models that re-supply without a host
/// round-trip.
#[derive(Debug, Clone)]
pub(crate) struct SealedImage {
    pub(crate) epoch: u64,
    pub(crate) weights: DenseMatrix,
    pub(crate) screener: Screener,
    pub(crate) pages_per_row: u64,
}

/// One committed epoch's bookkeeping mark, for rows-lost accounting.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CommitMark {
    /// The epoch this commit produced.
    pub(crate) epoch: u64,
    /// Distinct rows the commit (re)placed.
    pub(crate) rows_touched: u64,
    /// Journal append counter right after the commit's group flush
    /// (0 without a journal). A crash instant at or past this count means
    /// the commit was durable when the power failed.
    pub(crate) appended: u64,
}

/// Unjournaled-mode durable baseline: a full copy of the serving state
/// taken by [`Ecssd::arm_crash_snapshot`]. Everything committed after the
/// snapshot is unrecoverable without a journal.
#[derive(Debug, Clone)]
pub(crate) struct CrashSnapshot {
    pub(crate) epoch: u64,
    pub(crate) weights: Option<DenseMatrix>,
    pub(crate) screener: Option<Screener>,
    pub(crate) row_lpns: Vec<u64>,
    pub(crate) pages_per_row: u64,
    pub(crate) ftl: Ftl,
    pub(crate) next_lpn: u64,
    pub(crate) free_lpns: Vec<u64>,
}

/// What one crash-and-recover cycle did to the device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Whether a metadata journal drove the recovery (`false` = snapshot
    /// fallback with full-device scan).
    pub journaled: bool,
    /// Serving epoch at the instant of the power cut.
    pub epoch_before_crash: u64,
    /// Epoch the device serves after recovery (never ahead of the last
    /// durable commit).
    pub recovered_epoch: u64,
    /// Journal records replayed on top of the checkpoint (0 unjournaled).
    pub replayed_records: u64,
    /// Row-commits that were durable (or, unjournaled, committed since the
    /// snapshot) but could not be recovered. Zero for a working journal.
    pub rows_lost: u64,
    /// Hot-row cache entries invalidated by the recovery staleness
    /// barrier, counted under `CacheStats::invalidations`.
    pub cache_invalidations: u64,
    /// Mapped LPNs no recovered placement referenced, trimmed during
    /// cleanup (pages from commits that never became durable).
    pub orphaned_lpns: u64,
    /// Simulated recovery time: checkpoint + journal reads and orphan
    /// cleanup (journaled), or the full-device metadata scan (snapshot).
    pub recovery_ns: u64,
    /// Whether the recovered FTL passed its full mapping cross-check and
    /// the placements matched the restored functional image.
    pub mapping_consistent: bool,
}

impl Ecssd {
    /// Enables FTL metadata journaling from the current serving state.
    ///
    /// The current placements and epoch seed the journal's initial
    /// checkpoint, and the current functional image is sealed so
    /// [`Ecssd::recover`] can restore it. From here on the deploy and
    /// update paths journal every FTL mutation; each commit is flushed
    /// durably as one atomic group.
    pub fn enable_journal(&mut self, config: JournalConfig) {
        let placements: Vec<(u64, u64, u64)> = self
            .row_lpns
            .iter()
            .enumerate()
            .map(|(row, &first)| (row as u64, first, self.pages_per_row))
            .collect();
        self.device.enable_journal(config, &placements, self.epoch);
        self.sealed_images.clear();
        if let (Some(w), Some(s)) = (&self.weights, &self.screener) {
            self.sealed_images.push(SealedImage {
                epoch: self.epoch,
                weights: w.clone(),
                screener: s.clone(),
                pages_per_row: self.pages_per_row,
            });
        }
        self.commit_log.retain(|m| m.epoch <= self.epoch);
    }

    /// Whether a metadata journal is enabled.
    pub fn journal_enabled(&self) -> bool {
        self.device.journal().is_some()
    }

    /// Total journal records appended since enable (`None` without a
    /// journal). Crash instants are expressed in this coordinate.
    pub fn journal_appended(&self) -> Option<u64> {
        self.device.journal().map(|j| j.appended())
    }

    /// Arms the unjournaled crash baseline: a snapshot of the current
    /// serving state, standing in for the last state the device could
    /// reconstruct without a journal. [`Ecssd::recover`] falls back to it
    /// when no journal is enabled; every commit after the snapshot is
    /// reported as lost.
    pub fn arm_crash_snapshot(&mut self) {
        self.crash_snapshot = Some(CrashSnapshot {
            epoch: self.epoch,
            weights: self.weights.clone(),
            screener: self.screener.clone(),
            row_lpns: self.row_lpns.clone(),
            pages_per_row: self.pages_per_row,
            ftl: self.device.ftl().clone(),
            next_lpn: self.next_lpn,
            free_lpns: self.free_lpns.clone(),
        });
        self.commit_log.retain(|m| m.epoch <= self.epoch);
    }

    /// Simulates a power cut at an arbitrary instant: queued inputs,
    /// pending results, any staged update, and the journal's un-flushed
    /// group-commit buffer are all lost. With `survived = Some(k)` the
    /// durable journal rolls back to the last group flush at or before
    /// `k` total appended records (the [`ecssd_ssd::PowerLossInjector`]
    /// coordinate); `None` crashes "now", losing only the pending buffer.
    ///
    /// The device must not serve again until [`Ecssd::recover`] runs.
    pub fn power_cut(&mut self, survived: Option<u64>) {
        self.crash_bound = match (self.journal_appended(), survived) {
            (Some(appended), Some(k)) => Some(k.min(appended)),
            (Some(appended), None) => Some(appended),
            (None, _) => None,
        };
        self.device.power_cut(survived);
        self.queue = InputQueue::default();
        self.results.clear();
        self.staged = None;
    }

    /// Recovers the device after a [`Ecssd::power_cut`]: journaled replay
    /// when a journal is enabled, snapshot restore otherwise.
    ///
    /// # Errors
    ///
    /// [`EcssdError::Recovery`] when neither a journal nor an armed
    /// snapshot exists, or when no sealed functional image matches the
    /// recovered epoch; propagates device errors from a corrupt journal.
    pub fn recover(&mut self) -> Result<RecoveryOutcome, EcssdError> {
        self.recover_inner(None)
    }

    /// Journaled recovery bounded at `max_epoch`: replay stops at the last
    /// durable epoch commit `<= max_epoch`. This is the multi-shard
    /// rollback path — after independent recoveries disagree, every shard
    /// re-recovers to the minimum.
    ///
    /// # Errors
    ///
    /// [`EcssdError::Recovery`] without a journal (bounded recovery needs
    /// one) or when no sealed image matches; propagates device errors.
    pub fn recover_to(&mut self, max_epoch: u64) -> Result<RecoveryOutcome, EcssdError> {
        self.recover_inner(Some(max_epoch))
    }

    fn recover_inner(&mut self, max_epoch: Option<u64>) -> Result<RecoveryOutcome, EcssdError> {
        let epoch_before = self.epoch;
        let entry = self.clock;
        let prev_rows = self.weights.as_ref().map_or(0, |w| w.rows());
        // Volatile state dies with the power, however recovery is driven.
        self.queue = InputQueue::default();
        self.results.clear();
        self.staged = None;

        let mut outcome = if self.device.journal().is_some() {
            self.recover_journaled(max_epoch)?
        } else {
            if max_epoch.is_some() {
                return Err(EcssdError::Recovery(
                    "bounded recovery requires a metadata journal".into(),
                ));
            }
            self.recover_snapshot()?
        };

        // Staleness barrier: controller DRAM is volatile, so every cached
        // row image from before the crash is untrusted.
        let rows_now = self.weights.as_ref().map_or(0, |w| w.rows());
        let all_rows: Vec<u64> = (0..prev_rows.max(rows_now) as u64).collect();
        let inv_before = self.hot_cache.stats().invalidations;
        self.hot_cache.invalidate_rows(&all_rows);
        outcome.cache_invalidations = self.hot_cache.stats().invalidations - inv_before;

        self.drift.reset();
        self.commit_log.retain(|m| m.epoch <= self.epoch);
        outcome.epoch_before_crash = epoch_before;
        outcome.recovered_epoch = self.epoch;
        outcome.recovery_ns = self.clock.saturating_since(entry);
        Ok(outcome)
    }

    /// Replays the device journal, restores the matching sealed functional
    /// image, and trims orphaned pages from never-durable commits.
    fn recover_journaled(&mut self, max_epoch: Option<u64>) -> Result<RecoveryOutcome, EcssdError> {
        let epoch_before = self.epoch;
        let report = self.device.recover(max_epoch, self.clock)?;
        let recovered = report.recovered_epoch;
        let img_idx = self
            .sealed_images
            .iter()
            .rposition(|s| s.epoch == recovered)
            .ok_or_else(|| {
                EcssdError::Recovery(format!("no sealed functional image for epoch {recovered}"))
            })?;
        let img = self.sealed_images[img_idx].clone();
        self.sealed_images.truncate(img_idx + 1);
        self.pages_per_row = img.pages_per_row;

        // Rebuild placements; rows must be contiguous from 0 and agree
        // with the restored image for the mapping to count as consistent.
        let mut consistent = report.mapping_consistent;
        let mut placements = report.placements.clone();
        placements.sort_unstable();
        let mut row_lpns = Vec::with_capacity(placements.len());
        for (i, &(row, first, pages)) in placements.iter().enumerate() {
            if row != i as u64 || pages != self.pages_per_row {
                consistent = false;
            }
            row_lpns.push(first);
        }
        if row_lpns.len() != img.weights.rows() {
            consistent = false;
        }
        self.row_lpns = row_lpns;
        let rows = img.weights.rows();
        self.weights = Some(img.weights);
        self.screener = Some(img.screener);
        self.row_accesses.resize(rows, 0);

        // Rows-lost audit: a commit whose group flush preceded the crash
        // instant was durable and must have been recovered.
        let bound = self.crash_bound.take().unwrap_or(0);
        let rows_lost = self
            .commit_log
            .iter()
            .filter(|m| m.appended <= bound && m.epoch > recovered && m.epoch <= epoch_before)
            .map(|m| m.rows_touched)
            .sum();

        // Orphan cleanup: pages mapped by replayed writes whose commit
        // never became durable. Trim them (journaled) and re-seal the
        // recovered epoch so the cleanup itself is crash-consistent.
        let referenced: BTreeSet<u64> = self
            .row_lpns
            .iter()
            .flat_map(|&first| first..first + self.pages_per_row)
            .collect();
        let mut t = self.clock + report.recovery_ns;
        let mut orphans = 0u64;
        for lpn in 0..self.device.ftl().logical_pages() {
            if self.device.ftl().is_mapped(lpn) && !referenced.contains(&lpn) {
                t = t.max(self.device.trim_mapped(lpn, t)?);
                orphans += 1;
            }
        }
        if orphans > 0 {
            let rows = self.row_lpns.len() as u64;
            t = t.max(self.device.journal_commit(
                vec![JournalRecord::EpochCommit {
                    epoch: recovered,
                    rows,
                }],
                t,
            ));
        }

        self.next_lpn = referenced.iter().next_back().map_or(0, |&l| l + 1);
        self.free_lpns = (0..self.next_lpn)
            .filter(|lpn| !referenced.contains(lpn))
            .collect();
        self.epoch = recovered;
        self.clock = t;
        Ok(RecoveryOutcome {
            journaled: true,
            replayed_records: report.replayed_records,
            rows_lost,
            orphaned_lpns: orphans,
            mapping_consistent: consistent,
            ..RecoveryOutcome::default()
        })
    }

    /// Unjournaled fallback: restores the armed snapshot after paying a
    /// full-device metadata scan, losing every commit since the snapshot.
    fn recover_snapshot(&mut self) -> Result<RecoveryOutcome, EcssdError> {
        self.crash_bound = None;
        let snap = self.crash_snapshot.clone().ok_or_else(|| {
            EcssdError::Recovery(
                "no journal and no armed crash snapshot: device is unrecoverable".into(),
            )
        })?;
        // Every commit since the snapshot is gone, journal or not.
        let rows_lost = self
            .commit_log
            .iter()
            .filter(|m| m.epoch > snap.epoch)
            .map(|m| m.rows_touched)
            .sum();
        *self.device.ftl_mut() = snap.ftl;
        // Rebuilding L2P without a journal means scanning every mapped
        // page's out-of-band area — the full-device read the journal's
        // bounded replay avoids.
        let mut t = self.clock;
        for lpn in 0..self.device.ftl().logical_pages() {
            if !self.device.ftl().is_mapped(lpn) {
                continue;
            }
            if let Ok(addr) = self.device.ftl().translate(lpn) {
                t = self.device.flash_mut().read_page(addr, t).done;
            }
        }
        self.weights = snap.weights;
        self.screener = snap.screener;
        self.row_accesses
            .resize(self.weights.as_ref().map_or(0, DenseMatrix::rows), 0);
        self.row_lpns = snap.row_lpns;
        self.pages_per_row = snap.pages_per_row;
        self.next_lpn = snap.next_lpn;
        self.free_lpns = snap.free_lpns;
        self.epoch = snap.epoch;
        self.clock = t;
        let consistent = self.device.ftl().mapping_is_consistent();
        Ok(RecoveryOutcome {
            journaled: false,
            rows_lost,
            mapping_consistent: consistent,
            ..RecoveryOutcome::default()
        })
    }

    /// One background scrub pass: patrol-reads up to `max_pages` mapped
    /// pages and repairs any latent-UECC page via its RAID-5 stripe peers
    /// before a query trips over it. Scrub traffic shares the flash
    /// timelines with foreground work (that contention *is* the patrol
    /// overhead); the host clock does not advance.
    pub fn scrub_pass(&mut self, max_pages: u64) -> ScrubReport {
        self.device.scrub_pass(max_pages, self.clock)
    }

    /// Accumulated scrubber activity since device creation.
    pub fn scrub_totals(&self) -> ScrubReport {
        self.device.scrub_totals()
    }

    /// Seals a committed epoch: journals the placement group + epoch
    /// commit as one atomic flush, seals the functional image for
    /// recovery, and records the commit mark for rows-lost accounting.
    /// Called by `weight_deploy` and `commit_update` after bumping the
    /// epoch; a no-op flush-wise without a journal.
    pub(crate) fn record_commit(
        &mut self,
        placement_rows: &[u64],
        unmapped: &[u64],
        rows_touched: u64,
    ) {
        if self.device.journal().is_some() {
            let mut records: Vec<JournalRecord> = Vec::new();
            for &lpn in unmapped {
                records.push(JournalRecord::Unmap { lpn });
            }
            for &row in placement_rows {
                records.push(JournalRecord::RowPlacement {
                    row,
                    first_lpn: self.row_lpns[row as usize],
                    pages: self.pages_per_row,
                });
            }
            records.push(JournalRecord::EpochCommit {
                epoch: self.epoch,
                rows: self.row_lpns.len() as u64,
            });
            self.clock = self
                .clock
                .max(self.device.journal_commit(records, self.clock));
            if let (Some(w), Some(s)) = (&self.weights, &self.screener) {
                self.sealed_images.push(SealedImage {
                    epoch: self.epoch,
                    weights: w.clone(),
                    screener: s.clone(),
                    pages_per_row: self.pages_per_row,
                });
            }
        }
        let appended = self.journal_appended().unwrap_or(0);
        self.commit_log.push(CommitMark {
            epoch: self.epoch,
            rows_touched,
            appended,
        });
    }
}
