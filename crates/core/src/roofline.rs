//! Roofline analysis (Fig. 1): where the design points A, B and C sit.
//!
//! * Point **A** — the in-storage-computing baseline with a naive FP MAC:
//!   compute-bound below the memory roof.
//! * Point **B** — with the alignment-free MAC the compute ceiling rises
//!   above the bandwidth needed, turning the problem memory-bound.
//! * Point **C** — heterogeneous layout + learned interleaving raise the
//!   *achieved* memory roof (bandwidth utilization) and the operating point
//!   with it.

use ecssd_float::MacCircuit;
use serde::{Deserialize, Serialize};

use crate::AcceleratorConfig;

/// A point on the roofline plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Label ("A", "B", "C").
    pub label: &'static str,
    /// Operational intensity, FLOP per byte moved from flash.
    pub intensity: f64,
    /// Achieved throughput, GFLOPS.
    pub gflops: f64,
}

/// The roofline model of the in-storage accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak compute of the active MAC circuit, GFLOPS.
    pub peak_gflops: f64,
    /// Raw internal bandwidth (channels × per-channel), GB/s.
    pub raw_bandwidth_gbps: f64,
    /// Fraction of the raw bandwidth actually achieved.
    pub bandwidth_utilization: f64,
}

impl Roofline {
    /// Attainable GFLOPS at a given operational intensity.
    ///
    /// ```
    /// use ecssd_core::roofline::Roofline;
    /// let r = Roofline { peak_gflops: 50.0, raw_bandwidth_gbps: 8.0, bandwidth_utilization: 1.0 };
    /// assert_eq!(r.attainable(2.0), 16.0); // memory roof
    /// assert_eq!(r.attainable(100.0), 50.0); // compute roof
    /// ```
    pub fn attainable(&self, intensity: f64) -> f64 {
        let memory_roof = self.raw_bandwidth_gbps * self.bandwidth_utilization * intensity;
        memory_roof.min(self.peak_gflops)
    }

    /// The ridge point intensity where compute and memory roofs meet.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_gflops / (self.raw_bandwidth_gbps * self.bandwidth_utilization)
    }
}

/// Computes the three Fig. 1 points for the paper's accelerator at the
/// candidate-only classification intensity (`batch / 2` FLOP per byte:
/// 2 FLOPs per weight element reused `batch` times, 4 bytes per element).
pub fn paper_points(accel: &AcceleratorConfig, channels: usize) -> [RooflinePoint; 3] {
    let intensity = accel.batch as f64 / 2.0;
    let raw_bw = channels as f64; // 1 GB/s per channel
                                  // Bandwidth utilizations: what uniform interleaving achieves from load
                                  // imbalance alone (points A and B) vs the full learned layout (point C).
    let baseline = Roofline {
        peak_gflops: accel.fp32_gflops(MacCircuit::Naive),
        raw_bandwidth_gbps: raw_bw,
        bandwidth_utilization: 0.66,
    };
    let lifted = Roofline {
        peak_gflops: accel.fp32_gflops(MacCircuit::AlignmentFree),
        raw_bandwidth_gbps: raw_bw,
        bandwidth_utilization: 0.66,
    };
    let full = Roofline {
        peak_gflops: accel.fp32_gflops(MacCircuit::AlignmentFree),
        raw_bandwidth_gbps: raw_bw,
        bandwidth_utilization: 0.947,
    };
    [
        RooflinePoint {
            label: "A",
            intensity,
            gflops: baseline.attainable(intensity),
        },
        RooflinePoint {
            label: "B",
            intensity,
            gflops: lifted.attainable(intensity),
        },
        RooflinePoint {
            label: "C",
            intensity,
            gflops: full.attainable(intensity),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofs_intersect_at_ridge() {
        let r = Roofline {
            peak_gflops: 50.0,
            raw_bandwidth_gbps: 8.0,
            bandwidth_utilization: 1.0,
        };
        let ridge = r.ridge_intensity();
        assert!((r.attainable(ridge) - 50.0).abs() < 1e-9);
        assert!(r.attainable(ridge / 2.0) < 50.0);
        assert!((r.attainable(100.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn points_ascend_a_to_c() {
        let pts = paper_points(&AcceleratorConfig::paper_default(), 8);
        assert!(pts[0].gflops < pts[1].gflops, "A < B");
        assert!(pts[1].gflops < pts[2].gflops, "B < C");
        assert_eq!(pts[0].label, "A");
        assert_eq!(pts[2].label, "C");
    }

    #[test]
    fn point_a_is_compute_bound_point_b_memory_bound() {
        let accel = AcceleratorConfig::paper_default();
        let pts = paper_points(&accel, 8);
        // A is pinned at the naive compute ceiling.
        assert!((pts[0].gflops - accel.fp32_gflops(ecssd_float::MacCircuit::Naive)).abs() < 1e-6);
        // B is below the alignment-free ceiling: memory-bound.
        assert!(pts[1].gflops < accel.fp32_gflops(ecssd_float::MacCircuit::AlignmentFree));
    }
}
