//! Scalability analysis (§7.1): DRAM capacity vs maximum classification
//! scale (scaling up) and multi-device partitioning (scaling out).

use serde::{Deserialize, Serialize};

/// INT4 screener bytes per category at the paper's dimensions
/// (K = 256 → 128 bytes/row).
fn int4_bytes_per_category(projected_dim: usize) -> u64 {
    (projected_dim as u64).div_ceil(2)
}

/// Scaling-up analysis of a single ECSSD's DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramScaling {
    /// Device DRAM capacity, bytes.
    pub dram_bytes: u64,
    /// DRAM reserved for the L2P table and management data, bytes.
    pub management_bytes: u64,
    /// Projected dimension K of the screener.
    pub projected_dim: usize,
}

impl DramScaling {
    /// The paper's device: 16 GB DRAM, K = 256, and ~1.6 GB held back for
    /// SSD management data and the hot fraction of the L2P table — the
    /// reserve that makes the §7.1 arithmetic come out (100M categories fit
    /// 16 GB, 50M bind 8 GB, 500M need 5 devices).
    pub fn paper_default() -> Self {
        DramScaling {
            dram_bytes: 16 << 30,
            management_bytes: 1_717_986_918, // 1.6 GiB
            projected_dim: 256,
        }
    }

    /// Same analysis at another DRAM size (the §7.1 8 GB / 32 GB scenarios).
    pub fn with_dram_gb(mut self, gb: u64) -> Self {
        self.dram_bytes = gb << 30;
        self
    }

    /// Maximum categories whose INT4 screener fits the remaining DRAM.
    pub fn max_categories(&self) -> u64 {
        let usable = self.dram_bytes.saturating_sub(self.management_bytes);
        usable / int4_bytes_per_category(self.projected_dim)
    }

    /// Relative DRAM power vs the 16 GB design (§7.1: "the larger DRAM
    /// would cause at least 40 % increase in power consumption"). Modeled
    /// as proportional to device count with a constant refresh floor.
    pub fn relative_power(&self) -> f64 {
        let gb = (self.dram_bytes >> 30) as f64;
        // 0.2 constant + 0.05/GB: 16 GB → 1.0, 32 GB → 1.8, 8 GB → 0.6.
        (0.2 + 0.05 * gb) / (0.2 + 0.05 * 16.0)
    }
}

/// Scaling-out plan: partition a classification layer over multiple ECSSDs
/// (§7.1: a 500M-category layer over 5 devices).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleOutPlan {
    /// Total categories of the layer.
    pub categories: u64,
    /// Devices used.
    pub devices: u64,
    /// Categories per device.
    pub per_device: u64,
}

impl ScaleOutPlan {
    /// Plans the minimum number of ECSSDs whose DRAM holds the partitioned
    /// INT4 matrix.
    ///
    /// ```
    /// use ecssd_core::scale::{DramScaling, ScaleOutPlan};
    /// // §7.1: a 500M-category layer needs 5 devices.
    /// let plan = ScaleOutPlan::plan(500_000_000, DramScaling::paper_default());
    /// assert_eq!(plan.devices, 5);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `categories == 0`.
    pub fn plan(categories: u64, device: DramScaling) -> Self {
        assert!(categories > 0, "empty classification layer");
        let per_device_max = device.max_categories().max(1);
        let devices = categories.div_ceil(per_device_max);
        ScaleOutPlan {
            categories,
            devices,
            per_device: categories.div_ceil(devices),
        }
    }

    /// Ideal speedup from parallel partitions (each device screens and
    /// classifies its shard independently).
    pub fn parallel_speedup(&self) -> f64 {
        self.devices as f64
    }
}

/// Result of actually *executing* a scale-out plan on the simulator: every
/// partition runs as an independent ECSSD; the host broadcasts features and
/// merges per-device top-k results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleOutRun {
    /// The plan that was executed.
    pub plan: ScaleOutPlan,
    /// Extrapolated ns/batch of each device over its shard.
    pub per_device_ns: Vec<f64>,
    /// End-to-end ns/batch: slowest device plus the host-side merge.
    pub makespan_ns: f64,
    /// Reference ns/batch of a single hypothetical device holding the whole
    /// layer (its DRAM could not actually hold the screener; this is the
    /// denominator of the parallel-speedup claim).
    pub single_device_ns: f64,
}

impl ScaleOutRun {
    /// Measured parallel speedup over the single-device reference.
    pub fn speedup(&self) -> f64 {
        self.single_device_ns / self.makespan_ns
    }
}

/// Executes a scale-out plan: partitions the layer over `plan.devices`
/// ECSSDs and simulates each shard (§7.1: "partition the larger
/// classification layer into multiple ECSSDs and do the execution in
/// parallel").
///
/// # Errors
///
/// Propagates any [`ecssd_ssd::SsdError`] from machine construction or
/// the pipeline runs.
pub fn run_scale_out(
    benchmark: ecssd_workloads::Benchmark,
    plan: ScaleOutPlan,
    queries: usize,
    max_tiles: usize,
) -> Result<ScaleOutRun, ecssd_ssd::SsdError> {
    run_scale_out_parallel(benchmark, plan, queries, max_tiles, false)
}

/// [`run_scale_out`] with the per-device simulations optionally running on
/// parallel host threads (the scale-out counterpart of
/// [`EcssdConfig::parallel_shards`](crate::EcssdConfig::parallel_shards)).
///
/// Every device window is fully seeded and independent, and results are
/// merged in device-index order, so the returned [`ScaleOutRun`] is
/// byte-identical for both values of `parallel` (asserted by the
/// determinism tests).
///
/// # Errors
///
/// Propagates any [`ecssd_ssd::SsdError`] from machine construction or
/// the pipeline runs.
pub fn run_scale_out_parallel(
    benchmark: ecssd_workloads::Benchmark,
    plan: ScaleOutPlan,
    queries: usize,
    max_tiles: usize,
    parallel: bool,
) -> Result<ScaleOutRun, ecssd_ssd::SsdError> {
    use crate::{EcssdConfig, EcssdMachine, MachineVariant};
    use ecssd_workloads::{HotnessModel, SampledWorkload, TraceConfig};

    let run_device = |categories: u64, seed: u64| -> Result<f64, ecssd_ssd::SsdError> {
        let shard = ecssd_workloads::Benchmark {
            categories,
            ..benchmark
        };
        let trace = TraceConfig {
            hotness: HotnessModel::paper_default(0xec55d ^ seed),
            ..TraceConfig::paper_default()
        };
        let workload = SampledWorkload::new(shard, trace);
        let mut config = EcssdConfig::paper_default();
        // The single-device reference is hypothetical: its screener may
        // not fit 16 GB of DRAM (that's the point of scaling out). Size
        // the hypothetical device's DRAM to the shard so the reference
        // timing stays well-defined; DRAM *bandwidth* is unchanged.
        config.ssd.dram_bytes = config.ssd.dram_bytes.max(shard.int4_matrix_bytes());
        let mut machine =
            EcssdMachine::new(config, MachineVariant::paper_ecssd(), Box::new(workload))?;
        Ok(machine.run_window(queries, max_tiles)?.ns_per_query_full())
    };

    let mut seeds: Vec<u64> = (0..plan.devices).collect();
    let per_device_ns: Vec<f64> =
        crate::parallel::run_shards(&mut seeds, parallel, |_, &mut seed| {
            run_device(plan.per_device, seed)
        })?;
    let slowest = per_device_ns.iter().cloned().fold(0.0, f64::max);
    // Host merge: gather top-k candidates from every device over PCIe and
    // reduce — microseconds against seconds of classification.
    let merge_ns = plan.devices as f64 * 2_000.0;
    Ok(ScaleOutRun {
        plan,
        per_device_ns,
        makespan_ns: slowest + merge_ns,
        single_device_ns: run_device(plan.categories, 0xffff)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_gb_holds_100m_categories() {
        // §7.1: 16 GB DRAM holds the 12.8 GB INT4 matrix of 100M categories.
        let d = DramScaling::paper_default();
        assert!(d.max_categories() >= 100_000_000);
        assert!(d.max_categories() < 200_000_000);
    }

    #[test]
    fn eight_gb_is_bound_to_50m() {
        // §7.1: "the maximum scale ... would be severely bound to
        // 50-million categories" with 8 GB.
        let d = DramScaling::paper_default().with_dram_gb(8);
        assert!(d.max_categories() >= 50_000_000);
        assert!(d.max_categories() < 100_000_000);
    }

    #[test]
    fn thirty_two_gb_reaches_200m_at_power_cost() {
        // §7.1: 32 GB reaches 200M categories but costs ≥40% more power.
        let d = DramScaling::paper_default().with_dram_gb(32);
        assert!(d.max_categories() >= 200_000_000);
        assert!(d.relative_power() >= 1.4, "power {}", d.relative_power());
    }

    #[test]
    fn five_hundred_million_needs_five_devices() {
        // §7.1: "the huge classification layer will be partitioned into 5
        // ECSSDs".
        let plan = ScaleOutPlan::plan(500_000_000, DramScaling::paper_default());
        assert_eq!(plan.devices, 5);
        assert!(plan.per_device <= DramScaling::paper_default().max_categories());
        assert_eq!(plan.parallel_speedup(), 5.0);
    }

    #[test]
    fn small_layers_fit_one_device() {
        let plan = ScaleOutPlan::plan(1_000_000, DramScaling::paper_default());
        assert_eq!(plan.devices, 1);
    }

    #[test]
    fn executed_scale_out_approaches_linear_speedup() {
        // A 500M-category layer needs 5 devices (§7.1); shard dimensions
        // follow the S100M benchmark.
        let bench = ecssd_workloads::Benchmark::by_abbrev("XMLCNN-S100M").unwrap();
        let plan = ScaleOutPlan::plan(500_000_000, DramScaling::paper_default());
        assert!(plan.devices >= 2);
        let run = run_scale_out(bench, plan, 1, 8).unwrap();
        assert_eq!(run.per_device_ns.len(), plan.devices as usize);
        let speedup = run.speedup();
        assert!(
            speedup > 0.7 * plan.devices as f64 && speedup < 1.3 * plan.devices as f64,
            "speedup {speedup} for {} devices",
            plan.devices
        );
    }
}
