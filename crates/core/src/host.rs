//! The simulated host (§6.1: "we also simulate a simple host to coordinate
//! with ECSSD").
//!
//! The pipeline studies measure steady-state *throughput*; a serving host
//! cares about *latency under load*: query batches arrive on an open-loop
//! schedule, queue if the device is still busy, and complete after their
//! pipeline pass. [`HostCoordinator`] drives the [`crate::EcssdMachine`]
//! with such a schedule and reports the latency distribution.

use ecssd_ssd::SimTime;
use serde::{Deserialize, Serialize};

use crate::EcssdMachine;

/// An open-loop arrival schedule: one query batch every `interarrival_ns`,
/// with deterministic jitter so batches do not align artificially.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSchedule {
    /// Mean time between query-batch arrivals, ns.
    pub interarrival_ns: u64,
    /// Relative jitter in `[0, 1)`: arrival `i` is shifted by up to
    /// `±jitter/2 × interarrival`, from a seeded hash.
    pub jitter: f64,
    /// Jitter seed.
    pub seed: u64,
}

impl ArrivalSchedule {
    /// A schedule at `load` × the device's service rate: `service_ns` is
    /// the measured steady-state time per batch; `load < 1` keeps the
    /// queue stable, `load > 1` saturates it.
    pub fn at_load(service_ns: f64, load: f64) -> Self {
        assert!(load > 0.0, "load must be positive");
        ArrivalSchedule {
            interarrival_ns: (service_ns / load).max(1.0) as u64,
            jitter: 0.3,
            seed: 0xa221,
        }
    }

    /// Arrival time of query-batch `i`.
    pub fn arrival(&self, i: usize) -> SimTime {
        let base = self.interarrival_ns * i as u64;
        if self.jitter == 0.0 {
            return SimTime::from_ns(base);
        }
        let mut x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ self.seed;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        let span = self.interarrival_ns as f64 * self.jitter;
        let shift = (u - 0.5) * span;
        SimTime::from_ns((base as f64 + shift).max(0.0) as u64)
    }
}

/// Latency results of a served arrival schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Per-batch latency (completion − arrival), ns, in arrival order.
    pub latencies_ns: Vec<u64>,
    /// Completion time of the last batch.
    pub makespan: SimTime,
}

impl ServiceReport {
    /// Mean latency, ns.
    pub fn mean_ns(&self) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        self.latencies_ns.iter().sum::<u64>() as f64 / self.latencies_ns.len() as f64
    }

    /// Latency quantile `q ∈ [0, 1]`, ns, with linear interpolation between
    /// closest ranks (see [`ecssd_trace::percentile_ns`]).
    pub fn quantile_ns(&self, q: f64) -> f64 {
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        ecssd_trace::percentile_ns(&sorted, q)
    }
}

/// Drives a machine with an open-loop arrival schedule.
///
/// The device serves batches in order; a batch's service begins when both
/// it has arrived and the previous batch finished (the accelerator works on
/// one query batch's tile stream at a time from the host's perspective).
/// Service time per batch is taken from a steady-state pipeline window.
#[derive(Debug)]
pub struct HostCoordinator {
    schedule: ArrivalSchedule,
}

impl HostCoordinator {
    /// A coordinator with the given schedule.
    pub fn new(schedule: ArrivalSchedule) -> Self {
        HostCoordinator { schedule }
    }

    /// Serves `batches` arrivals on `machine` (window of `max_tiles` per
    /// batch) and reports latencies.
    ///
    /// # Errors
    ///
    /// Propagates any [`ecssd_ssd::SsdError`] from the probe run.
    ///
    /// # Panics
    ///
    /// Panics if `batches == 0`.
    pub fn serve(
        &self,
        machine: &mut EcssdMachine,
        batches: usize,
        max_tiles: usize,
    ) -> Result<ServiceReport, ecssd_ssd::SsdError> {
        assert!(batches > 0, "need at least one batch");
        // Measure the per-batch service time once in steady state.
        let probe = machine.run_window(2, max_tiles)?;
        let service_ns = probe.ns_per_query();
        let mut free_at = 0.0f64;
        let mut latencies = Vec::with_capacity(batches);
        let mut last_done = SimTime::ZERO;
        for i in 0..batches {
            let arrival = self.schedule.arrival(i);
            let start = (arrival.as_ns() as f64).max(free_at);
            let done = start + service_ns;
            free_at = done;
            latencies.push((done - arrival.as_ns() as f64) as u64);
            last_done = SimTime::from_ns(done as u64);
        }
        Ok(ServiceReport {
            latencies_ns: latencies,
            makespan: last_done,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EcssdConfig, MachineVariant};
    use ecssd_workloads::{Benchmark, SampledWorkload, TraceConfig};

    fn machine() -> EcssdMachine {
        let bench = Benchmark::by_abbrev("Transformer-W268K").unwrap();
        let w = SampledWorkload::new(bench, TraceConfig::paper_default());
        EcssdMachine::new(
            EcssdConfig::paper_default(),
            MachineVariant::paper_ecssd(),
            Box::new(w),
        )
        .unwrap()
    }

    #[test]
    fn arrivals_are_monotone_enough_and_deterministic() {
        let s = ArrivalSchedule {
            interarrival_ns: 1000,
            jitter: 0.3,
            seed: 7,
        };
        assert_eq!(s.arrival(5), s.arrival(5));
        // Jitter never reorders arrivals (span < interarrival).
        for i in 1..200 {
            assert!(s.arrival(i) > s.arrival(i - 1), "reordered at {i}");
        }
    }

    #[test]
    fn light_load_latency_is_near_service_time() {
        let mut m = machine();
        let probe = m.run_window(2, 12).unwrap().ns_per_query();
        let mut m = machine();
        let report = HostCoordinator::new(ArrivalSchedule::at_load(probe, 0.3))
            .serve(&mut m, 24, 12)
            .unwrap();
        // At 30% load the queue is almost always empty.
        assert!(
            report.mean_ns() < probe * 1.3,
            "mean {} vs service {}",
            report.mean_ns(),
            probe
        );
    }

    #[test]
    fn overload_grows_the_queue() {
        let mut m = machine();
        let probe = m.run_window(2, 12).unwrap().ns_per_query();
        let serve_at = |load: f64| {
            let mut m = machine();
            HostCoordinator::new(ArrivalSchedule::at_load(probe, load))
                .serve(&mut m, 32, 12)
                .unwrap()
        };
        let light = serve_at(0.5);
        let heavy = serve_at(1.5);
        // At 150% load, the tail latency diverges linearly with position.
        assert!(heavy.quantile_ns(0.95) > 4.0 * light.quantile_ns(0.95));
        assert!(heavy.mean_ns() > light.mean_ns() * 2.0);
    }

    #[test]
    fn quantiles_are_ordered() {
        let r = ServiceReport {
            latencies_ns: vec![5, 1, 9, 3, 7],
            makespan: SimTime::from_ns(100),
        };
        assert!(r.quantile_ns(0.0) <= r.quantile_ns(0.5));
        assert!(r.quantile_ns(0.5) <= r.quantile_ns(1.0));
        assert_eq!(r.quantile_ns(1.0), 9.0);
        // Even-count medians interpolate instead of snapping to a rank.
        let even = ServiceReport {
            latencies_ns: vec![1, 3],
            makespan: SimTime::from_ns(100),
        };
        assert_eq!(even.quantile_ns(0.5), 2.0);
    }
}
