//! Typed classification requests: the QoS-aware request object every
//! frontend accepts, replacing the positional `(features, k)` pair.
//!
//! A [`Request`] carries the feature vector and top-`k` like before, plus
//! the serving metadata the fleet layer routes and admits on: a
//! [`QueryClass`] (latency-sensitive interactive traffic vs
//! deadline-tolerant batch traffic), an optional per-request deadline in
//! simulated microseconds, and an optional open-loop arrival timestamp.
//! `From<(Vec<f32>, usize)>` keeps the old positional call sites working:
//! `engine.submit((features, k))` builds a default latency-sensitive
//! request with no deadline.

use serde::{Deserialize, Serialize};

/// Quality-of-service class of a request (DeepRecSys-style split): the
/// fleet admits, routes, and sheds the two classes differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryClass {
    /// Interactive traffic with a tight deadline; shed last.
    LatencySensitive,
    /// Throughput-oriented background traffic with a loose deadline; under
    /// overload it is shed first to protect the latency-sensitive class.
    Batch,
}

impl std::fmt::Display for QueryClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryClass::LatencySensitive => write!(f, "latency-sensitive"),
            QueryClass::Batch => write!(f, "batch"),
        }
    }
}

/// Why a request was rejected instead of answered (the typed payload of
/// [`crate::EcssdError::Rejected`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RejectReason {
    /// The submission queue was at its configured limit.
    QueueFull,
    /// Admission control predicted the deadline cannot be met and shed the
    /// request before it consumed device time.
    DeadlineUnmeetable,
    /// The request was served, but its answer completed after the deadline
    /// (simulated time); the late answer is dropped.
    DeadlineExceeded,
    /// No eligible replica: every replica was draining, recovering, or
    /// behind the fleet commit epoch.
    Unavailable,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "submission queue full"),
            RejectReason::DeadlineUnmeetable => {
                write!(f, "deadline unmeetable at admission")
            }
            RejectReason::DeadlineExceeded => write!(f, "answer missed the deadline"),
            RejectReason::Unavailable => write!(f, "no eligible replica"),
        }
    }
}

/// Per-class latency SLO targets in simulated microseconds. Used as the
/// default deadline for requests that do not carry their own, and as the
/// admission-control reference: batch traffic is shed once the predicted
/// queueing delay threatens the latency-sensitive target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloTargets {
    /// Deadline for [`QueryClass::LatencySensitive`] requests, µs.
    pub latency_sensitive_us: u64,
    /// Deadline for [`QueryClass::Batch`] requests, µs.
    pub batch_us: u64,
}

impl SloTargets {
    /// The deadline for `class`, µs.
    pub fn deadline_us(&self, class: QueryClass) -> u64 {
        match class {
            QueryClass::LatencySensitive => self.latency_sensitive_us,
            QueryClass::Batch => self.batch_us,
        }
    }
}

impl Default for SloTargets {
    fn default() -> Self {
        SloTargets {
            latency_sensitive_us: 2_000,
            batch_us: 50_000,
        }
    }
}

/// A typed classification request: features and top-`k`, plus the QoS
/// metadata the serving layers act on.
///
/// ```
/// use ecssd_core::{QueryClass, Request};
///
/// // Positional back-compat: a default latency-sensitive request.
/// let r: Request = (vec![0.0f32; 8], 5).into();
/// assert_eq!(r.k, 5);
/// assert_eq!(r.class, QueryClass::LatencySensitive);
///
/// // Full form, builder style.
/// let r = Request::new(vec![0.0f32; 8], 5)
///     .with_class(QueryClass::Batch)
///     .with_deadline_us(50_000)
///     .with_arrival_ns(1_000_000);
/// assert_eq!(r.deadline_us, Some(50_000));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// The feature vector to classify.
    pub features: Vec<f32>,
    /// How many top categories to return.
    pub k: usize,
    /// QoS class (default [`QueryClass::LatencySensitive`]).
    pub class: QueryClass,
    /// Deadline in simulated µs from arrival; `None` uses the serving
    /// layer's per-class [`SloTargets`] default (or no deadline at all if
    /// none is configured).
    pub deadline_us: Option<u64>,
    /// Open-loop arrival time in simulated ns; set by arrival-process
    /// drivers, `None` for closed-loop callers.
    pub arrival_ns: Option<u64>,
}

impl Request {
    /// A latency-sensitive request with no deadline or arrival stamp.
    pub fn new(features: Vec<f32>, k: usize) -> Self {
        Request {
            features,
            k,
            class: QueryClass::LatencySensitive,
            deadline_us: None,
            arrival_ns: None,
        }
    }

    /// Sets the QoS class.
    #[must_use]
    pub fn with_class(mut self, class: QueryClass) -> Self {
        self.class = class;
        self
    }

    /// Sets the deadline, simulated µs from arrival.
    #[must_use]
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Sets the open-loop arrival time, simulated ns.
    #[must_use]
    pub fn with_arrival_ns(mut self, arrival_ns: u64) -> Self {
        self.arrival_ns = Some(arrival_ns);
        self
    }
}

impl From<(Vec<f32>, usize)> for Request {
    fn from((features, k): (Vec<f32>, usize)) -> Self {
        Request::new(features, k)
    }
}

/// A typed embedding-gather request: the lookup ids of one pooled
/// multi-hot feature, plus the same QoS metadata as [`Request`]. The
/// answer is one pooled vector (the element-wise sum of the looked-up
/// table rows).
///
/// ```
/// use ecssd_core::{GatherRequest, QueryClass};
///
/// let r = GatherRequest::new(vec![3, 17, 1_000_000])
///     .with_class(QueryClass::Batch)
///     .with_deadline_us(50_000);
/// assert_eq!(r.ids.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatherRequest {
    /// Embedding-table row ids to gather and pool.
    pub ids: Vec<u64>,
    /// QoS class (default [`QueryClass::LatencySensitive`]).
    pub class: QueryClass,
    /// Deadline in simulated µs from arrival; `None` uses the serving
    /// layer's per-class [`SloTargets`] default.
    pub deadline_us: Option<u64>,
}

impl GatherRequest {
    /// A latency-sensitive gather request with no deadline.
    pub fn new(ids: Vec<u64>) -> Self {
        GatherRequest {
            ids,
            class: QueryClass::LatencySensitive,
            deadline_us: None,
        }
    }

    /// Sets the QoS class.
    #[must_use]
    pub fn with_class(mut self, class: QueryClass) -> Self {
        self.class = class;
        self
    }

    /// Sets the deadline, simulated µs from arrival.
    #[must_use]
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }
}

impl From<Vec<u64>> for GatherRequest {
    fn from(ids: Vec<u64>) -> Self {
        GatherRequest::new(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_tuple_builds_default_request() {
        let r: Request = (vec![1.0f32, 2.0], 3).into();
        assert_eq!(r.features, vec![1.0, 2.0]);
        assert_eq!(r.k, 3);
        assert_eq!(r.class, QueryClass::LatencySensitive);
        assert_eq!(r.deadline_us, None);
        assert_eq!(r.arrival_ns, None);
    }

    #[test]
    fn slo_targets_resolve_per_class() {
        let slo = SloTargets::default();
        assert_eq!(
            slo.deadline_us(QueryClass::LatencySensitive),
            slo.latency_sensitive_us
        );
        assert_eq!(slo.deadline_us(QueryClass::Batch), slo.batch_us);
        assert!(slo.batch_us > slo.latency_sensitive_us);
    }

    #[test]
    fn gather_request_defaults_and_builders() {
        let r: GatherRequest = vec![1u64, 2, 3].into();
        assert_eq!(r.class, QueryClass::LatencySensitive);
        assert_eq!(r.deadline_us, None);
        let r = r.with_class(QueryClass::Batch).with_deadline_us(11);
        assert_eq!(r.class, QueryClass::Batch);
        assert_eq!(r.deadline_us, Some(11));
        let json = serde_json::to_string(&r).unwrap();
        let back: GatherRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn request_round_trips_through_serde() {
        let r = Request::new(vec![0.5f32; 4], 2)
            .with_class(QueryClass::Batch)
            .with_deadline_us(7)
            .with_arrival_ns(9);
        let json = serde_json::to_string(&r).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
