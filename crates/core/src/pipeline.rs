//! The ECSSD execution pipeline: tile-by-tile, dual-precision, double
//! buffered (§4.5).
//!
//! Per query batch and per weight tile:
//!
//! 1. the INT4 screener weights of the tile stream in — from device DRAM
//!    under the heterogeneous layout, or from the flash channels (sharing
//!    the buses with FP32 traffic) under the homogeneous baseline;
//! 2. the INT4 MAC array computes approximate scores, the comparator
//!    filters candidates;
//! 3. candidate FP32 (CFP32) weight rows are fetched from the flash
//!    channels into a ping-pong buffer bank;
//! 4. the FP32 MAC array runs candidate-only classification.
//!
//! All stages are timeline resources, so the ping-pong overlap of §4.5
//! (INT4 of tile *t+1* concurrent with FP32 of tile *t*, fetch of *t+1*
//! concurrent with compute of *t*) emerges from the dependency graph rather
//! than being hard-coded.

use ecssd_float::MacCircuit;
use ecssd_layout::{InterleavingStrategy, ParityScheme, TileLayout};
use ecssd_ssd::{
    CacheStats, Dram, FaultPlan, FlashSim, HealthReport, HostInterface, HotRowCache,
    ImbalanceReport, PageReadOutcome, PhysPageAddr, PingPongBuffer, SimTime, SsdError,
};
use ecssd_trace::{Stage, StageBreakdown, Tracer};
use ecssd_workloads::CandidateSource;
use serde::{Deserialize, Serialize};

use crate::{ComputeEngine, EcssdConfig};

/// Where the INT4 screener weights live (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPlacement {
    /// ECSSD's heterogeneous layout: INT4 in device DRAM, FP32 in NAND.
    Heterogeneous,
    /// Baseline: both INT4 and FP32 weights in NAND flash; their transfers
    /// interfere on the channel buses.
    Homogeneous,
}

/// What the pipeline does when a candidate-row read comes back faulted
/// (uncorrectable ECC error or dead die).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationPolicy {
    /// Surface the fault as a typed error and abort the run. The right
    /// choice when any silent accuracy loss is unacceptable.
    #[default]
    Fail,
    /// Re-issue the failed page reads up to `max` more times. Recovers
    /// transient uncorrectable errors (a later attempt re-senses with
    /// fresh reference voltages); permanently failed pages that survive
    /// all attempts are dropped and counted as unrecovered.
    Retry {
        /// Maximum re-read attempts per failed page.
        max: u32,
    },
    /// Rebuild the lost page from its RAID-5 stripe peers (the other dies
    /// of the same channel, [`ParityScheme`]). Costs `stripe_width - 1`
    /// extra same-channel page reads per lost page; rows whose stripe
    /// peers also fail are counted as unrecovered.
    Reconstruct,
    /// Drop the affected candidate rows from classification and account
    /// the potential recall loss ([`EcssdMachine::skipped`]). Cheapest in
    /// time, pays in accuracy.
    Skip,
}

/// One architecture point: MAC circuit × placement × interleaving × overlap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineVariant {
    /// FP32 MAC circuit implementation.
    pub mac: MacCircuit,
    /// INT4/FP32 data placement.
    pub placement: DataPlacement,
    /// FP32 row interleaving over channels.
    pub interleaving: InterleavingStrategy,
    /// Whether the dual-module / ping-pong overlap of §4.5 is enabled
    /// (disabling it is the ablation of DESIGN.md §5).
    pub overlap: bool,
    /// Whether the scheduler drains one tile's candidate transfers before
    /// issuing the next tile's (§4.5 passes candidate addresses to the
    /// flash controllers tile by tile; §5.2: "the final data access time is
    /// decided by the busiest flash channel"). Disabling it models a more
    /// aggressive per-channel run-ahead scheduler — an ablation.
    pub per_tile_sync: bool,
    /// Training queries used to fine-tune hot degrees (0 disables the
    /// frequency signal even if the strategy asks for it).
    pub training_queries: usize,
    /// How the pipeline degrades when candidate reads fault (only
    /// observable when a [`FaultPlan`] is installed).
    pub degradation: DegradationPolicy,
}

impl MachineVariant {
    /// The full ECSSD design point.
    pub fn paper_ecssd() -> Self {
        MachineVariant {
            mac: MacCircuit::AlignmentFree,
            placement: DataPlacement::Heterogeneous,
            interleaving: InterleavingStrategy::Learned(Default::default()),
            overlap: true,
            per_tile_sync: true,
            training_queries: 24,
            degradation: DegradationPolicy::Fail,
        }
    }

    /// The Fig. 8 starting baseline: naive FP MAC, sequential storing,
    /// homogeneous placement.
    pub fn baseline_start() -> Self {
        MachineVariant {
            mac: MacCircuit::Naive,
            placement: DataPlacement::Homogeneous,
            interleaving: InterleavingStrategy::Sequential,
            overlap: true,
            per_tile_sync: true,
            training_queries: 0,
            degradation: DegradationPolicy::Fail,
        }
    }

    /// Sets the degradation policy (builder style).
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> Self {
        self.degradation = policy;
        self
    }
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// End-to-end simulated time.
    pub makespan: SimTime,
    /// Query batches executed.
    pub queries: usize,
    /// Tiles simulated per query.
    pub tiles_simulated: usize,
    /// Tiles the full matrix would need per query.
    pub tiles_total: usize,
    /// Candidate rows fetched in total.
    pub candidate_rows: u64,
    /// Channel-bandwidth utilization of FP32 weight traffic only (the
    /// quantity Fig. 8 reports).
    pub fp_channel_utilization: f64,
    /// Per-channel FP32 bytes moved.
    pub fp_channel_bytes: Vec<u64>,
    /// INT4 engine busy time, ns.
    pub int4_busy_ns: u64,
    /// FP32 engine busy time, ns.
    pub fp32_busy_ns: u64,
    /// DRAM interface busy time, ns.
    pub dram_busy_ns: u64,
    /// Producer stalls waiting for a buffer bank, ns.
    pub buffer_stall_ns: u64,
    /// Fault and degradation accounting for the run (all-zero when no
    /// faults were injected or observed).
    pub health: HealthReport,
    /// Hot candidate-row cache counters (all-zero when
    /// `SsdConfig::hot_cache_bytes == 0`).
    pub cache: CacheStats,
    /// Per-stage simulated-time attribution over `[0, makespan]`, present
    /// when span tracing is on (see [`EcssdMachine::enable_tracing`]).
    /// `None` when tracing is disabled, so traced and untraced reports
    /// differ only in this field.
    pub breakdown: Option<StageBreakdown>,
}

impl RunReport {
    /// Simulated nanoseconds per query batch over the simulated window.
    pub fn ns_per_query(&self) -> f64 {
        self.makespan.as_ns() as f64 / self.queries.max(1) as f64
    }

    /// Extrapolated nanoseconds per query batch over the full weight
    /// matrix (window time scaled by the tile ratio; valid because the
    /// pipeline is in steady state within the window).
    pub fn ns_per_query_full(&self) -> f64 {
        self.ns_per_query() * self.tiles_total as f64 / self.tiles_simulated.max(1) as f64
    }

    /// Imbalance of the per-channel FP32 byte loads.
    pub fn fp_imbalance(&self) -> ImbalanceReport {
        ImbalanceReport::from_loads(&self.fp_channel_bytes)
    }
}

/// Per-tile timing record (optional instrumentation; see
/// [`EcssdMachine::enable_tile_timings`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileTiming {
    /// Query batch index.
    pub query: usize,
    /// Tile index.
    pub tile: usize,
    /// Candidate rows this tile fetched.
    pub candidates: usize,
    /// When screening finished (candidates known).
    pub screen_done: SimTime,
    /// When the last candidate page arrived in the buffer bank.
    pub fetch_done: SimTime,
    /// When FP32 classification finished.
    pub fp_done: SimTime,
}

/// The assembled ECSSD performance model.
pub struct EcssdMachine {
    config: EcssdConfig,
    variant: MachineVariant,
    source: Box<dyn CandidateSource>,
    flash: FlashSim,
    dram: Dram,
    /// Hot candidate-row cache held in reserved device DRAM: rows that hit
    /// skip their NAND fetch and stream from DRAM instead.
    hot_cache: HotRowCache,
    host: HostInterface,
    buffer: PingPongBuffer,
    int4: ComputeEngine,
    fp32: ComputeEngine,
    /// Cached per-tile layouts (keyed by tile index).
    layouts: std::collections::HashMap<usize, TileLayout>,
    /// FP32-only traffic accounting (bus busy ns, bytes) per channel.
    fp_busy: Vec<u64>,
    fp_bytes: Vec<u64>,
    /// Optional per-tile timing instrumentation.
    tile_timings: Option<Vec<TileTiming>>,
    /// Known-dead dies per channel (populated by the retirement path of
    /// the learned framework; empty vectors mean a healthy channel).
    dead_per_channel: Vec<Vec<usize>>,
    /// Dead-die detections already absorbed from the flash layer.
    absorbed_dead: usize,
    /// Degradation-policy accounting (accumulated across runs, merged into
    /// [`RunReport::health`]).
    retried_reads: u64,
    reconstructed_rows: u64,
    reconstruction_page_reads: u64,
    unrecovered_rows: u64,
    /// Candidate rows dropped under [`DegradationPolicy::Skip`], as
    /// `(query, tile, global_row)` — the input to recall-loss accounting.
    skipped: Vec<(usize, usize, u64)>,
    /// Span-trace handle shared with every timed resource (disabled by
    /// default; see [`EcssdMachine::enable_tracing`]).
    tracer: Tracer,
}

impl std::fmt::Debug for EcssdMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcssdMachine")
            .field("variant", &self.variant)
            .field("benchmark", &self.source.benchmark().abbrev)
            .finish_non_exhaustive()
    }
}

/// Fixed scheduler/comparator latency charged per tile, ns.
const TILE_CONTROL_NS: u64 = 200;

/// A candidate page read that came back faulted (degradation bookkeeping).
#[derive(Debug, Clone, Copy)]
struct FailedPage {
    /// Index into the tile's flat address list (`cand × pages_per_row`).
    index: usize,
    addr: PhysPageAddr,
    /// When the fault was detected (ladder exhausted / timeout / status).
    detected: SimTime,
    dead_die: bool,
}

impl EcssdMachine {
    /// Builds the machine for one benchmark trace.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::DramCapacityExceeded`] when the heterogeneous
    /// layout is selected but the benchmark's INT4 screener matrix does
    /// not fit the configured device DRAM (the paper sizes DRAM so this
    /// holds for every paper benchmark, §7.1).
    pub fn new(
        config: EcssdConfig,
        variant: MachineVariant,
        source: Box<dyn CandidateSource>,
    ) -> Result<Self, SsdError> {
        let geometry = config.ssd.geometry;
        let flash = FlashSim::new(geometry, config.ssd.timing);
        let mut dram = Dram::new(
            config.ssd.dram_bytes,
            ecssd_ssd::Bandwidth::from_gbps(config.ssd.dram_gbps),
        );
        if variant.placement == DataPlacement::Heterogeneous {
            dram.reserve(source.benchmark().int4_matrix_bytes())?;
        }
        let hot_cache = HotRowCache::new(config.ssd.hot_cache_bytes);
        if hot_cache.is_enabled() {
            dram.reserve(hot_cache.capacity_bytes())?;
        }
        let accel = config.accelerator;
        Ok(EcssdMachine {
            buffer: PingPongBuffer::new(config.ssd.buffer_bytes),
            int4: ComputeEngine::new(accel.int4_gops()),
            fp32: ComputeEngine::new(accel.fp32_gflops(variant.mac)),
            flash,
            dram,
            hot_cache,
            host: HostInterface::pcie3_x4(),
            layouts: std::collections::HashMap::new(),
            fp_busy: vec![0; geometry.channels],
            fp_bytes: vec![0; geometry.channels],
            tile_timings: None,
            dead_per_channel: vec![Vec::new(); geometry.channels],
            absorbed_dead: 0,
            retried_reads: 0,
            reconstructed_rows: 0,
            reconstruction_page_reads: 0,
            unrecovered_rows: 0,
            skipped: Vec::new(),
            tracer: Tracer::disabled(),
            config,
            variant,
            source,
        })
    }

    /// Enables simulated-time span tracing and returns the shared handle.
    /// Subsequent [`RunReport`]s carry a per-stage [`StageBreakdown`], and
    /// the handle's spans can be exported with
    /// [`ecssd_trace::chrome_trace_json`]. Tracing observes the timelines
    /// without perturbing them: a traced run reports the same times as an
    /// untraced one.
    pub fn enable_tracing(&mut self) -> Tracer {
        self.set_tracer(Tracer::enabled());
        self.tracer.clone()
    }

    /// Installs a span-trace handle into every timed pipeline resource
    /// (flash array, DRAM interface, host link, both MAC engines).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.flash.set_tracer(tracer.clone());
        self.dram.set_tracer(tracer.clone());
        self.host.set_tracer(tracer.clone());
        self.int4.set_tracer(tracer.clone(), Stage::Int4Screen);
        self.fp32.set_tracer(tracer.clone(), Stage::Fp32Mac);
        self.tracer = tracer;
    }

    /// The machine's trace handle (disabled unless tracing was enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs a deterministic fault plan on the underlying flash
    /// simulator. Subsequent runs draw faults from it; the active
    /// [`DegradationPolicy`] decides how the pipeline reacts.
    ///
    /// # Panics
    ///
    /// Panics if the plan names a die outside the configured geometry.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.flash.set_fault_plan(plan);
    }

    /// Candidate rows dropped under [`DegradationPolicy::Skip`] (or left
    /// unrecovered by the other policies), as `(query, tile, global_row)`.
    /// Downstream recall-loss accounting compares these against the true
    /// top-k rows of each query.
    pub fn skipped(&self) -> &[(usize, usize, u64)] {
        &self.skipped
    }

    /// The device-health summary so far (flash-layer counters plus
    /// policy-level recovery accounting).
    pub fn health_report(&self) -> HealthReport {
        let mut health = self.flash.health_report();
        health.retried_reads = self.retried_reads;
        health.reconstructed_rows = self.reconstructed_rows;
        health.reconstruction_page_reads = self.reconstruction_page_reads;
        health.skipped_rows = self.skipped.len() as u64 - self.unrecovered_rows;
        health.unrecovered_rows = self.unrecovered_rows;
        health
    }

    /// Per-channel health weights for failure-aware interleaving: the
    /// fraction of the channel's dies still alive, scaled by any bandwidth
    /// derating. A healthy device is all-1.0.
    fn channel_health_weights(&self) -> Vec<f64> {
        let dies = self.config.ssd.geometry.dies_per_channel;
        (0..self.config.ssd.geometry.channels)
            .map(|ch| {
                let alive = dies - self.dead_per_channel[ch].len();
                let derate = self
                    .flash
                    .fault_plan()
                    .map(|p| p.derate_for(ch))
                    .unwrap_or(1.0);
                alive as f64 / dies as f64 * derate
            })
            .collect()
    }

    /// Folds newly detected die failures into the machine's health state.
    /// Only the learned framework has the health tracking to act on a
    /// detection: it retires the die (subsequent reads fail fast instead
    /// of timing out), remaps row placement onto the surviving dies, and
    /// re-weights the interleaving. The sequential and uniform baselines
    /// keep paying the full command-timeout ladder on every access.
    fn absorb_die_failures(&mut self) {
        let detected: Vec<(usize, usize)> = self.flash.detected_dead_dies().to_vec();
        if detected.len() == self.absorbed_dead {
            return;
        }
        for &(ch, die) in &detected[self.absorbed_dead..] {
            if matches!(self.variant.interleaving, InterleavingStrategy::Learned(_)) {
                self.flash.retire_die(ch, die);
                if !self.dead_per_channel[ch].contains(&die) {
                    self.dead_per_channel[ch].push(die);
                    self.dead_per_channel[ch].sort_unstable();
                }
                // Re-place subsequent tiles around the lost die.
                self.layouts.clear();
            }
        }
        self.absorbed_dead = detected.len();
    }

    /// Records a [`TileTiming`] for every (query, tile) processed by
    /// subsequent runs — the data behind pipeline-visualization tooling.
    pub fn enable_tile_timings(&mut self) {
        self.tile_timings = Some(Vec::new());
    }

    /// The recorded per-tile timings (empty unless enabled).
    pub fn tile_timings(&self) -> &[TileTiming] {
        self.tile_timings.as_deref().unwrap_or(&[])
    }

    /// The variant under test.
    pub fn variant(&self) -> &MachineVariant {
        &self.variant
    }

    /// The trace source.
    pub fn source(&self) -> &dyn CandidateSource {
        self.source.as_ref()
    }

    /// The per-tile layout (computed on first use; health-weighted so the
    /// learned framework routes load away from degraded or dying
    /// channels — on a healthy device this is identical to the plain
    /// assignment).
    pub fn tile_layout(&mut self, tile: usize) -> &TileLayout {
        if !self.layouts.contains_key(&tile) {
            let channels = self.config.ssd.geometry.channels;
            let num_tiles = self.source.num_tiles();
            let range = self.source.tile_row_range(tile);
            let predicted = self.source.predicted_hotness(tile);
            let freq = if self.variant.training_queries > 0 {
                Some(
                    self.source
                        .training_frequency(tile, self.variant.training_queries),
                )
            } else {
                None
            };
            let weights = self.channel_health_weights();
            let layout = self.variant.interleaving.assign_tile_with_health(
                tile,
                num_tiles,
                range.start,
                &predicted,
                freq.as_deref(),
                channels,
                &weights,
            );
            self.layouts.insert(tile, layout);
        }
        &self.layouts[&tile]
    }

    /// Physical address of page `p` of a tile-local candidate row, honoring
    /// the layout's channel and spreading rows over the channel's dies.
    fn row_page_addr(
        &self,
        layout: &TileLayout,
        global_row: u64,
        local_row: usize,
        page: u64,
    ) -> PhysPageAddr {
        let g = self.config.ssd.geometry;
        let channel = layout.channel_of(local_row);
        // Deterministic die/block placement derived from the row id; only
        // channel and die affect timing.
        let mut h = global_row.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (page << 7);
        h ^= h >> 29;
        // Retired dies are skipped by hashing over the channel's surviving
        // dies; with no retirements this is the legacy `h % dies` mapping.
        let dead = &self.dead_per_channel[channel];
        let die = if dead.is_empty() || dead.len() >= g.dies_per_channel {
            (h % g.dies_per_channel as u64) as usize
        } else {
            let healthy: Vec<usize> = (0..g.dies_per_channel)
                .filter(|d| !dead.contains(d))
                .collect();
            healthy[(h % healthy.len() as u64) as usize]
        };
        let plane = ((h >> 8) % g.planes_per_die as u64) as usize;
        let block = ((h >> 16) % g.blocks_per_plane as u64) as usize;
        let pg = ((h >> 32) % g.pages_per_block as u64) as usize;
        PhysPageAddr {
            channel,
            die,
            plane,
            block,
            page: pg,
        }
    }

    /// Runs `queries` query batches over the first `max_tiles` tiles of the
    /// matrix (use `usize::MAX` for all tiles). Returns the run report.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::BufferOverflow`] when a tile's candidates
    /// exceed one ping-pong bank, and — under [`DegradationPolicy::Fail`]
    /// only — [`SsdError::Uncorrectable`] / [`SsdError::DieFailed`] when
    /// an injected fault hits a candidate read. The other policies degrade
    /// gracefully and report through [`RunReport::health`].
    ///
    /// # Panics
    ///
    /// Panics if `queries == 0`.
    pub fn run_window(&mut self, queries: usize, max_tiles: usize) -> Result<RunReport, SsdError> {
        assert!(queries > 0, "need at least one query");
        let tiles_total = self.source.num_tiles();
        let tiles = tiles_total.min(max_tiles);
        let bench = *self.source.benchmark();
        let accel = self.config.accelerator;
        let batch = accel.batch as u64;
        let page_bytes = self.config.ssd.geometry.page_bytes;
        let channels = self.config.ssd.geometry.channels;
        let pages_per_row = bench.pages_per_row(page_bytes);
        let k = bench.projected_dim() as u64;
        let d = bench.hidden as u64;

        let mut makespan = SimTime::ZERO;
        let mut candidate_rows = 0u64;
        // Without overlap, each stage of each tile waits for the previous
        // tile to finish completely (the ablation point).
        let mut serial_cursor = SimTime::ZERO;

        for q in 0..queries {
            // Host sends the batch's CFP32 features (4 bytes + shared
            // exponent per vector) and INT4 projected features.
            let feature_bytes = batch * (4 * d + 1) + batch * k.div_ceil(2);
            let host_done = self.host.transfer(feature_bytes, serial_cursor);
            makespan = makespan.max(host_done);

            // The INT4 screening stage runs PREFETCH tiles ahead of the
            // FP32 stage (§4.5: "when the FP32 MAC circuit is computing
            // with the first weight tile, the INT4 MAC circuit is computing
            // with the second weight tile"). The 128 KB INT4 weight buffer
            // double-buffers the screener tiles, so the INT4 stream of tile
            // t may start once tile t-2 has been consumed; interleaving the
            // bus submissions in this order lets the prefetched INT4
            // traffic and the earlier tiles' FP32 transfers share the buses
            // the way a real channel scheduler would.
            const PREFETCH: usize = 2;
            let mut screen_done_q: std::collections::VecDeque<(SimTime, Vec<u64>)> =
                std::collections::VecDeque::new();
            let mut screen_history: Vec<SimTime> = Vec::with_capacity(tiles);
            let mut prev_fetch_done = SimTime::ZERO;
            for step in 0..tiles + PREFETCH {
                // --- INT4 screening phase for tile `step` ----------------
                if step < tiles {
                    let t = step;
                    let range = self.source.tile_row_range(t);
                    let tile_len = (range.end - range.start) as usize;
                    let int4_tile_bytes = tile_len as u64 * bench.int4_row_bytes();
                    let buffer_ready = if t >= PREFETCH {
                        screen_history[t - PREFETCH]
                    } else {
                        SimTime::ZERO
                    };
                    let int4_issue = if self.variant.overlap {
                        host_done.max(buffer_ready)
                    } else {
                        serial_cursor.max(host_done)
                    };
                    let int4_fetch_done = match self.variant.placement {
                        DataPlacement::Heterogeneous => {
                            self.dram.transfer(int4_tile_bytes, int4_issue)
                        }
                        DataPlacement::Homogeneous => {
                            // INT4 weights stream from flash, sharing the
                            // buses with FP32 candidate traffic. Sequential
                            // storing co-locates them with the tile's FP32
                            // rows; the interleaved layouts spread them
                            // over all buses.
                            match self.variant.interleaving {
                                InterleavingStrategy::Sequential => {
                                    let ch = (t * channels / tiles_total).min(channels - 1);
                                    self.flash.bus_transfer(ch, int4_tile_bytes, int4_issue)
                                }
                                _ => {
                                    let per = int4_tile_bytes / channels as u64;
                                    let mut done = int4_issue;
                                    for ch in 0..channels {
                                        done =
                                            done.max(self.flash.bus_transfer(ch, per, int4_issue));
                                    }
                                    done
                                }
                            }
                        }
                    };
                    let int4_ops = 2 * k * tile_len as u64 * batch;
                    let int4_done = self.int4.compute(int4_ops, int4_fetch_done);
                    let screen_done = int4_done + TILE_CONTROL_NS;
                    self.tracer
                        .span(Stage::CandidateSelect, int4_done, screen_done);
                    let cands = self.source.candidates(q, t);
                    candidate_rows += cands.len() as u64;
                    self.tracer
                        .count("pipeline.candidate_rows", cands.len() as u64);
                    screen_history.push(screen_done);
                    screen_done_q.push_back((screen_done, cands));
                }

                // --- FP32 phase for tile `step - PREFETCH` ---------------
                if step < PREFETCH {
                    continue;
                }
                let t = step - PREFETCH;
                let Some((mut screen_done, cands)) = screen_done_q.pop_front() else {
                    unreachable!("screening stays PREFETCH tiles ahead");
                };
                if !self.variant.overlap {
                    // Serial ablation: this tile's FP32 phase starts only
                    // after the previous tile fully completed.
                    screen_done = screen_done.max(serial_cursor);
                }
                let range = self.source.tile_row_range(t);
                let cand_bytes = cands.len() as u64 * pages_per_row * page_bytes as u64;

                // Fetch into a ping-pong bank. Rows resident in the hot
                // cache stream from reserved device DRAM; only misses go to
                // the flash channels.
                let layout = self.tile_layout(t).clone();
                let bank = self.buffer.acquire(cand_bytes.max(1), screen_done)?;
                let row_bytes = pages_per_row * page_bytes as u64;
                let mut fetch_rows: Vec<usize> = Vec::with_capacity(cands.len());
                let mut hit_done = screen_done;
                let mut addrs = Vec::with_capacity(cands.len() * pages_per_row as usize);
                for (ci, &row) in cands.iter().enumerate() {
                    if self.hot_cache.lookup(row) {
                        hit_done = hit_done.max(self.dram.transfer(row_bytes, screen_done));
                        self.tracer.count("cache.hit_rows", 1);
                        continue;
                    }
                    fetch_rows.push(ci);
                    let local = (row - range.start) as usize;
                    for p in 0..pages_per_row {
                        addrs.push(self.row_page_addr(&layout, row, local, p));
                    }
                }
                // Sense commands go to the dies as soon as screening
                // resolved the addresses; data leaves the page registers
                // once the ping-pong bank is ours — and, with the paper's
                // per-tile scheduler, once the previous tile's transfers
                // drained ("the final data access time is decided by the
                // busiest flash channel", §5.2).
                let gate = if self.variant.per_tile_sync {
                    bank.max(prev_fetch_done)
                } else {
                    bank
                };
                let fetch = self.flash.read_batch_checked(&addrs, screen_done, gate);
                // Degradation: resolve faulted pages per the active policy.
                // `row_dropped[i]` marks candidate rows excluded from
                // classification (skipped or unrecovered). Read indices
                // cover only the fetched (cache-miss) rows, so they are
                // remapped to candidate indices before recovery.
                let ppr = pages_per_row as usize;
                let mut fetch_done = fetch.done.max(hit_done);
                let mut row_dropped = vec![false; cands.len()];
                let remap = |i: usize| fetch_rows[i / ppr] * ppr + i % ppr;
                let failed: Vec<FailedPage> = fetch
                    .reads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, o)| match *o {
                        PageReadOutcome::Ok(_) => None,
                        PageReadOutcome::Uncorrectable { addr, detected } => Some(FailedPage {
                            index: remap(i),
                            addr,
                            detected,
                            dead_die: false,
                        }),
                        PageReadOutcome::DeadDie { addr, detected } => Some(FailedPage {
                            index: remap(i),
                            addr,
                            detected,
                            dead_die: true,
                        }),
                    })
                    .collect();
                if !failed.is_empty() {
                    // Dead-die detections feed back into interleaving and
                    // placement before any recovery traffic is issued.
                    self.absorb_die_failures();
                    fetch_done = fetch_done.max(self.recover_failed_pages(
                        q,
                        t,
                        &cands,
                        pages_per_row,
                        &failed,
                        gate,
                        &mut row_dropped,
                    )?);
                }
                prev_fetch_done = fetch_done;
                // FP32-only traffic accounting: only candidate pages that
                // actually reached the buffer count as useful traffic
                // (reconstruction peer reads occupy the buses but deliver
                // no new candidate data; dropped rows deliver nothing).
                let per_page_ns = self.config.ssd.timing.page_transfer_ns(page_bytes);
                for (fi, &ci) in fetch_rows.iter().enumerate() {
                    if row_dropped[ci] {
                        continue;
                    }
                    for p in 0..ppr {
                        let a = &addrs[fi * ppr + p];
                        self.fp_busy[a.channel] += per_page_ns;
                        self.fp_bytes[a.channel] += page_bytes as u64;
                    }
                    // Rows that survived the NAND fetch become cache
                    // residents for subsequent queries.
                    self.hot_cache.insert(cands[ci], row_bytes);
                }

                // FP32 candidate-only classification over surviving rows.
                let delivered = row_dropped.iter().filter(|&&dropped| !dropped).count() as u64;
                let flops = 2 * d * delivered * batch;
                let fp_issue = fetch_done.max(host_done);
                let fp_done = self.fp32.compute(flops, fp_issue);
                self.buffer.release(fp_done);

                if let Some(timings) = &mut self.tile_timings {
                    timings.push(TileTiming {
                        query: q,
                        tile: t,
                        candidates: cands.len(),
                        screen_done,
                        fetch_done,
                        fp_done,
                    });
                }
                // Results return to host: batch × candidates × 4 bytes.
                let result_done = self.host.transfer(batch * delivered * 4, fp_done);
                makespan = makespan.max(result_done);
                if !self.variant.overlap {
                    serial_cursor = result_done;
                }
            }
        }

        let total_fp_busy: u64 = self.fp_busy.iter().sum();
        Ok(RunReport {
            makespan,
            queries,
            tiles_simulated: tiles,
            tiles_total,
            candidate_rows,
            fp_channel_utilization: total_fp_busy as f64
                / (makespan.as_ns().max(1) as f64 * channels as f64),
            fp_channel_bytes: self.fp_bytes.clone(),
            int4_busy_ns: self.int4.busy_ns(),
            fp32_busy_ns: self.fp32.busy_ns(),
            dram_busy_ns: self.dram.busy_ns(),
            buffer_stall_ns: self.buffer.stall_ns(),
            health: self.health_report(),
            cache: self.hot_cache.stats(),
            breakdown: if self.tracer.is_enabled() {
                let mut b =
                    StageBreakdown::attribute(&self.tracer.spans(), SimTime::ZERO, makespan);
                b.dropped_spans = self.tracer.dropped_spans();
                Some(b)
            } else {
                None
            },
        })
    }

    /// Resolves faulted candidate pages per the active
    /// [`DegradationPolicy`]. Returns the time the last recovery traffic
    /// (re-reads, stripe-peer reads) completed; marks rows the policy
    /// could not save in `row_dropped`.
    #[allow(clippy::too_many_arguments)]
    fn recover_failed_pages(
        &mut self,
        query: usize,
        tile: usize,
        cands: &[u64],
        pages_per_row: u64,
        failed: &[FailedPage],
        gate: SimTime,
        row_dropped: &mut [bool],
    ) -> Result<SimTime, SsdError> {
        let ppr = pages_per_row as usize;
        let mut done = SimTime::ZERO;
        for f in failed {
            done = done.max(f.detected);
        }
        match self.variant.degradation {
            DegradationPolicy::Fail => {
                let f = &failed[0];
                return Err(if f.dead_die {
                    SsdError::DieFailed {
                        channel: f.addr.channel,
                        die: f.addr.die,
                    }
                } else {
                    SsdError::Uncorrectable {
                        channel: f.addr.channel,
                        die: f.addr.die,
                    }
                });
            }
            DegradationPolicy::Retry { max } => {
                // Re-issue all failed pages together; uncorrectable errors
                // are transient (a later attempt re-senses with fresh
                // reference voltages), dead dies keep failing.
                let mut pending: Vec<FailedPage> = failed.to_vec();
                for _ in 0..max {
                    if pending.is_empty() {
                        break;
                    }
                    let issue = pending
                        .iter()
                        .map(|f| f.detected)
                        .max()
                        .unwrap_or(SimTime::ZERO);
                    let addrs: Vec<PhysPageAddr> = pending.iter().map(|f| f.addr).collect();
                    let re = self
                        .flash
                        .read_batch_checked(&addrs, issue, issue.max(gate));
                    done = done.max(re.done);
                    let mut still = Vec::new();
                    for (f, outcome) in pending.iter().zip(re.reads.iter()) {
                        match *outcome {
                            PageReadOutcome::Ok(_) => self.retried_reads += 1,
                            PageReadOutcome::Uncorrectable { detected, .. } => {
                                still.push(FailedPage { detected, ..*f })
                            }
                            PageReadOutcome::DeadDie { detected, .. } => still.push(FailedPage {
                                detected,
                                dead_die: true,
                                ..*f
                            }),
                        }
                    }
                    pending = still;
                }
                for f in &pending {
                    let row = f.index / ppr;
                    if !row_dropped[row] {
                        row_dropped[row] = true;
                        self.unrecovered_rows += 1;
                        self.skipped.push((query, tile, cands[row]));
                    }
                }
            }
            DegradationPolicy::Reconstruct => {
                let g = self.config.ssd.geometry;
                let mut touched: Vec<usize> = Vec::new();
                if g.dies_per_channel < 2 {
                    // No stripe peers to rebuild from.
                    for f in failed {
                        let row = f.index / ppr;
                        if !row_dropped[row] {
                            row_dropped[row] = true;
                            self.unrecovered_rows += 1;
                            self.skipped.push((query, tile, cands[row]));
                        }
                    }
                } else {
                    let scheme = ParityScheme::new(g.dies_per_channel);
                    for f in failed {
                        let row = f.index / ppr;
                        if row_dropped[row] {
                            continue;
                        }
                        if !touched.contains(&row) {
                            touched.push(row);
                        }
                        // Read the surviving stripe members — same channel,
                        // same page coordinate, the other dies — and XOR
                        // them back together (XOR time is negligible next
                        // to the page reads).
                        let stripe = ((f.addr.plane * g.blocks_per_plane + f.addr.block)
                            * g.pages_per_block
                            + f.addr.page) as u64;
                        let peer_addrs: Vec<PhysPageAddr> = scheme
                            .peers_of(f.addr.die, stripe)
                            .into_iter()
                            .map(|die| PhysPageAddr { die, ..f.addr })
                            .collect();
                        self.reconstruction_page_reads += peer_addrs.len() as u64;
                        let re = self.flash.read_batch_checked(
                            &peer_addrs,
                            f.detected,
                            f.detected.max(gate),
                        );
                        done = done.max(re.done);
                        if !re.all_ok() {
                            // A stripe peer faulted too: the row is gone.
                            row_dropped[row] = true;
                            self.unrecovered_rows += 1;
                            self.skipped.push((query, tile, cands[row]));
                        }
                    }
                }
                self.reconstructed_rows +=
                    touched.iter().filter(|&&r| !row_dropped[r]).count() as u64;
            }
            DegradationPolicy::Skip => {
                for f in failed {
                    let row = f.index / ppr;
                    if !row_dropped[row] {
                        row_dropped[row] = true;
                        self.skipped.push((query, tile, cands[row]));
                    }
                }
            }
        }
        Ok(done)
    }

    /// Runs `queries` query batches over the whole matrix.
    ///
    /// # Errors
    ///
    /// See [`EcssdMachine::run_window`].
    pub fn run(&mut self, queries: usize) -> Result<RunReport, SsdError> {
        self.run_window(queries, usize::MAX)
    }

    /// Per-channel candidate access counts of one `(query, tile)` pair —
    /// the Fig. 11 measurement.
    pub fn tile_channel_loads(&mut self, query: usize, tile: usize) -> Vec<u64> {
        let range = self.source.tile_row_range(tile);
        let cands = self.source.candidates(query, tile);
        let layout = self.tile_layout(tile);
        let local: Vec<usize> = cands.iter().map(|&r| (r - range.start) as usize).collect();
        ecssd_layout::channel_loads(layout, &local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecssd_workloads::{Benchmark, SampledWorkload, TraceConfig};

    fn machine(variant: MachineVariant, bench: &str) -> EcssdMachine {
        let b = Benchmark::by_abbrev(bench).unwrap();
        let w = SampledWorkload::new(b, TraceConfig::paper_default());
        EcssdMachine::new(EcssdConfig::paper_default(), variant, Box::new(w)).unwrap()
    }

    fn window_report(variant: MachineVariant, bench: &str) -> RunReport {
        machine(variant, bench).run_window(3, 24).unwrap()
    }

    #[test]
    fn ecssd_outperforms_baseline() {
        let ecssd = window_report(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let base = window_report(MachineVariant::baseline_start(), "Transformer-W268K");
        let speedup = base.ns_per_query() / ecssd.ns_per_query();
        assert!(speedup > 5.0, "speedup {speedup}");
    }

    #[test]
    fn sequential_baseline_leaves_channels_idle() {
        let base = window_report(MachineVariant::baseline_start(), "Transformer-W268K");
        assert!(
            base.fp_channel_utilization < 0.15,
            "utilization {}",
            base.fp_channel_utilization
        );
        // Most channels never see FP32 traffic in a 24-tile window.
        assert!(base.fp_imbalance().idle_channels >= 6);
    }

    #[test]
    fn learned_interleaving_balances_fp_traffic() {
        let r = window_report(MachineVariant::paper_ecssd(), "Transformer-W268K");
        assert!(
            r.fp_imbalance().balance() > 0.9,
            "balance {}",
            r.fp_imbalance().balance()
        );
        assert!(
            r.fp_channel_utilization > 0.65,
            "utilization {}",
            r.fp_channel_utilization
        );
    }

    #[test]
    fn uniform_sits_between_sequential_and_learned() {
        let mk = |interleaving| MachineVariant {
            interleaving,
            ..MachineVariant::paper_ecssd()
        };
        let seq = window_report(mk(InterleavingStrategy::Sequential), "Transformer-W268K");
        let uni = window_report(mk(InterleavingStrategy::Uniform), "Transformer-W268K");
        let lrn = window_report(MachineVariant::paper_ecssd(), "Transformer-W268K");
        assert!(seq.ns_per_query() > uni.ns_per_query());
        assert!(uni.ns_per_query() > lrn.ns_per_query());
    }

    #[test]
    fn heterogeneous_beats_homogeneous() {
        let hetero = window_report(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let homo = window_report(
            MachineVariant {
                placement: DataPlacement::Homogeneous,
                ..MachineVariant::paper_ecssd()
            },
            "Transformer-W268K",
        );
        assert!(homo.ns_per_query() > hetero.ns_per_query() * 1.05);
        assert!(homo.dram_busy_ns < hetero.dram_busy_ns);
    }

    #[test]
    fn alignment_free_beats_naive_on_compute_bound_benchmarks() {
        // GNMT (D=1024) is compute-heavy at batch 16; the naive MAC stalls.
        let af = window_report(MachineVariant::paper_ecssd(), "GNMT-E32K");
        let naive = window_report(
            MachineVariant {
                mac: MacCircuit::Naive,
                ..MachineVariant::paper_ecssd()
            },
            "GNMT-E32K",
        );
        assert!(
            naive.ns_per_query() > af.ns_per_query() * 1.2,
            "naive {} vs af {}",
            naive.ns_per_query(),
            af.ns_per_query()
        );
    }

    #[test]
    fn overlap_ablation_slows_the_pipeline() {
        let on = window_report(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let off = window_report(
            MachineVariant {
                overlap: false,
                ..MachineVariant::paper_ecssd()
            },
            "Transformer-W268K",
        );
        assert!(
            off.ns_per_query() > on.ns_per_query() * 1.1,
            "no-overlap {} vs overlapped {}",
            off.ns_per_query(),
            on.ns_per_query()
        );
    }

    #[test]
    fn extrapolation_scales_with_tiles() {
        let mut m = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let r = m.run_window(2, 16).unwrap();
        let full = r.ns_per_query_full();
        assert!(full > r.ns_per_query() * 30.0, "523 tiles vs 16 simulated");
    }

    #[test]
    fn fig11_loads_are_more_balanced_under_learned() {
        let mut lrn = machine(MachineVariant::paper_ecssd(), "GNMT-E32K");
        let mut uni = machine(
            MachineVariant {
                interleaving: InterleavingStrategy::Uniform,
                training_queries: 0,
                ..MachineVariant::paper_ecssd()
            },
            "GNMT-E32K",
        );
        // Average the per-tile balance over several (query, tile) pairs;
        // any single tile is one random draw.
        let mut lb = 0.0;
        let mut ub = 0.0;
        let pairs = 24;
        for q in 0..4 {
            for t in 0..6 {
                let l = lrn.tile_channel_loads(q, t);
                let u = uni.tile_channel_loads(q, t);
                lb += ecssd_ssd::ImbalanceReport::from_loads(&l).balance();
                ub += ecssd_ssd::ImbalanceReport::from_loads(&u).balance();
            }
        }
        lb /= pairs as f64;
        ub /= pairs as f64;
        assert!(lb > ub + 0.1, "learned {lb} vs uniform {ub}");
    }

    #[test]
    fn tile_timings_record_the_pipeline_order() {
        let mut m = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        m.enable_tile_timings();
        let _ = m.run_window(1, 8).unwrap();
        let timings = m.tile_timings();
        assert_eq!(timings.len(), 8);
        for t in timings {
            assert!(t.screen_done <= t.fetch_done);
            assert!(t.fetch_done <= t.fp_done);
            assert!(t.candidates > 0);
        }
        // Screening runs ahead: by the last tile, its screen_done precedes
        // the previous tile's fp_done (dual-module overlap, §4.5).
        let last = &timings[7];
        let prev = &timings[6];
        assert!(last.screen_done < prev.fp_done);
    }

    #[test]
    fn works_at_100m_scale() {
        let mut m = machine(MachineVariant::paper_ecssd(), "XMLCNN-S100M");
        let r = m.run_window(1, 4).unwrap();
        assert_eq!(r.tiles_total, 195_313);
        assert!(r.ns_per_query_full() > 1e6);
    }

    #[test]
    fn hot_cache_serves_repeat_candidates_from_dram() {
        let bench = Benchmark::by_abbrev("Transformer-W268K").unwrap();
        let config = EcssdConfig::builder()
            .hot_cache_bytes(64 << 20)
            .build()
            .unwrap();
        let w = SampledWorkload::new(bench, TraceConfig::paper_default());
        let mut m = EcssdMachine::new(config, MachineVariant::paper_ecssd(), Box::new(w)).unwrap();
        let r = m.run_window(3, 16).unwrap();
        assert!(r.cache.hits > 0, "repeat candidates should hit the cache");
        assert!(r.cache.bytes_saved > 0);
        assert!(r.cache.resident_bytes > 0);
        // Cache hits shed NAND traffic vs the uncached run (same window);
        // a disabled cache reports all-zero counters.
        let base = machine(MachineVariant::paper_ecssd(), "Transformer-W268K")
            .run_window(3, 16)
            .unwrap();
        assert_eq!(base.cache, CacheStats::default());
        let cached_bytes: u64 = r.fp_channel_bytes.iter().sum();
        let base_fp: u64 = base.fp_channel_bytes.iter().sum();
        assert!(
            cached_bytes < base_fp,
            "cached {cached_bytes} vs base {base_fp}"
        );
    }

    // ---- fault injection & degradation ---------------------------------

    use ecssd_ssd::FaultPlan;

    fn faulted_report(policy: DegradationPolicy, plan: FaultPlan) -> RunReport {
        let mut m = machine(
            MachineVariant::paper_ecssd().with_degradation(policy),
            "Transformer-W268K",
        );
        m.set_fault_plan(plan);
        m.run_window(2, 16).unwrap()
    }

    #[test]
    fn inert_fault_plan_leaves_the_run_byte_identical() {
        let clean = machine(MachineVariant::paper_ecssd(), "Transformer-W268K")
            .run_window(2, 16)
            .unwrap();
        let inert = faulted_report(DegradationPolicy::Fail, FaultPlan::with_seed(99));
        assert_eq!(clean, inert);
        assert!(inert.health.is_clean());
    }

    #[test]
    fn fail_policy_surfaces_a_typed_uecc_error() {
        let mut m = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        m.set_fault_plan(FaultPlan::with_seed(3).with_uecc(1.0));
        match m.run_window(1, 4) {
            Err(SsdError::Uncorrectable { .. }) => {}
            other => panic!("expected Uncorrectable, got {other:?}"),
        }
    }

    #[test]
    fn retry_policy_recovers_transient_uecc_without_losing_rows() {
        let plan = FaultPlan::with_seed(11).with_uecc(0.01);
        let r = faulted_report(DegradationPolicy::Retry { max: 4 }, plan);
        assert!(r.health.uecc_events > 0, "no fault ever fired");
        assert!(r.health.retried_reads > 0);
        assert_eq!(r.health.unrecovered_rows, 0);
        assert_eq!(r.health.skipped_rows, 0);
        // Recovery traffic costs time vs the fault-free run (same window).
        let clean = machine(MachineVariant::paper_ecssd(), "Transformer-W268K")
            .run_window(2, 16)
            .unwrap();
        assert!(r.ns_per_query() >= clean.ns_per_query());
    }

    #[test]
    fn reconstruct_policy_rebuilds_rows_from_stripe_peers() {
        let plan = FaultPlan::with_seed(11).with_uecc(0.01);
        let r = faulted_report(DegradationPolicy::Reconstruct, plan);
        assert!(r.health.reconstructed_rows > 0);
        // RAID-5 over the channel's dies: stripe_width - 1 peer reads per
        // lost page (rows are single-page on this benchmark).
        let w = EcssdConfig::paper_default().ssd.geometry.dies_per_channel as u64;
        assert!(r.health.reconstruction_page_reads >= r.health.reconstructed_rows * (w - 1));
        assert_eq!(r.health.skipped_rows, 0);
    }

    #[test]
    fn skip_policy_drops_rows_and_accounts_them() {
        let plan = FaultPlan::with_seed(11).with_uecc(0.01);
        let mut m = machine(
            MachineVariant::paper_ecssd().with_degradation(DegradationPolicy::Skip),
            "Transformer-W268K",
        );
        m.set_fault_plan(plan);
        let r = m.run_window(2, 16).unwrap();
        assert!(r.health.skipped_rows > 0);
        assert_eq!(r.health.skipped_rows, m.skipped().len() as u64);
        // Every skipped entry names a (query, tile) inside the window.
        for &(q, t, _row) in m.skipped() {
            assert!(q < 2 && t < 16);
        }
    }

    #[test]
    fn faulted_runs_replay_byte_identically() {
        let plan = FaultPlan::with_seed(77)
            .with_uecc(0.01)
            .with_retry_storms(0.02);
        let a = faulted_report(DegradationPolicy::Retry { max: 2 }, plan.clone());
        let b = faulted_report(DegradationPolicy::Retry { max: 2 }, plan);
        assert_eq!(a, b);
        assert_eq!(a.health, b.health);
    }

    #[test]
    fn learned_interleaving_retires_a_dead_die_and_routes_around_it() {
        // Channel 0: the sequential layout maps the first tiles there, so
        // both variants exercise the dead die.
        let plan = FaultPlan::with_seed(5).with_dead_die(0, 1);
        let mut m = machine(
            MachineVariant::paper_ecssd().with_degradation(DegradationPolicy::Skip),
            "Transformer-W268K",
        );
        m.set_fault_plan(plan.clone());
        let first = m.run_window(2, 16).unwrap();
        assert!(first.health.dead_dies.contains(&(0, 1)));
        // After detection + retirement, subsequent windows re-place rows on
        // the surviving dies: no further reads hit the dead die.
        let before = m.health_report().dead_die_reads;
        let _ = m.run_window(2, 16).unwrap();
        assert_eq!(m.health_report().dead_die_reads, before);

        // The sequential baseline has no health feedback: its layout keeps
        // addressing the dead die in every window.
        let mut seq = machine(
            MachineVariant {
                interleaving: InterleavingStrategy::Sequential,
                ..MachineVariant::paper_ecssd()
            }
            .with_degradation(DegradationPolicy::Skip),
            "Transformer-W268K",
        );
        seq.set_fault_plan(plan);
        let _ = seq.run_window(2, 16).unwrap();
        let before = seq.health_report().dead_die_reads;
        let _ = seq.run_window(2, 16).unwrap();
        assert!(seq.health_report().dead_die_reads > before);
    }

    #[test]
    fn tracing_is_an_observer_not_a_participant() {
        // A traced run must report the same simulated times as an untraced
        // one: tracing reads the timelines, it never perturbs them.
        let mut plain = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let mut traced = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let tracer = traced.enable_tracing();
        assert!(tracer.is_enabled());

        let a = plain.run_window(3, 24).unwrap();
        let mut b = traced.run_window(3, 24).unwrap();
        let breakdown = b.breakdown.take().expect("traced run carries a breakdown");
        assert_eq!(a.breakdown, None);
        assert_eq!(a, b, "tracing changed the simulated run");

        // Exclusive attribution covers the whole window: stage times plus
        // idle equal the makespan exactly.
        assert_eq!(
            breakdown.attributed_total_ns() + breakdown.idle_ns,
            breakdown.total_ns
        );
        assert!(breakdown.reconciles(0.01));
        assert_eq!(breakdown.dropped_spans, 0);
        // The pipeline exercises screening, selection, MAC, and flash.
        for stage in [
            Stage::Int4Screen,
            Stage::CandidateSelect,
            Stage::Fp32Mac,
            Stage::FlashRead,
        ] {
            let e = breakdown.entries.iter().find(|e| e.stage == stage);
            assert!(
                e.is_some_and(|e| e.busy_ns > 0),
                "no {stage} spans recorded"
            );
        }
    }

    #[test]
    fn traced_counters_match_report() {
        let mut m = machine(MachineVariant::paper_ecssd(), "Transformer-W268K");
        let tracer = m.enable_tracing();
        let r = m.run_window(3, 24).unwrap();
        let counters: std::collections::BTreeMap<String, u64> =
            tracer.counters().into_iter().collect();
        assert_eq!(
            counters.get("pipeline.candidate_rows").copied(),
            Some(r.candidate_rows)
        );
        assert_eq!(
            counters.get("cache.hit_rows").copied().unwrap_or(0),
            r.cache.hits
        );
    }
}
