//! Crash consistency on the functional [`Ecssd`] device: power-loss
//! injection at deterministic instants, journaled replay recovery (zero
//! committed rows lost at *every* crash instant), the unjournaled
//! fallback that quantifies what the journal prevents, the post-recovery
//! cache staleness barrier, and latent-UECC repair — by the background
//! scrubber at device level and by the fault ladder at machine level.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ecssd_core::prelude::*;
use ecssd_core::{DegradationPolicy, EcssdMachine, MachineVariant, UpdateBatch};
use ecssd_ssd::{FaultPlan, JournalConfig, PowerLossInjector};
use ecssd_workloads::{Benchmark, SampledWorkload, TraceConfig};

const ROWS: usize = 64;
const COLS: usize = 32;

fn query(phase: f32) -> Vec<f32> {
    (0..COLS)
        .map(|i| ((i as f32) * 0.17 + phase).sin())
        .collect()
}

fn queries() -> Vec<Vec<f32>> {
    (0..3).map(|q| query(q as f32 * 0.9)).collect()
}

fn fresh_row(seed: f32) -> Vec<f32> {
    (0..COLS)
        .map(|i| ((i as f32) * 0.29 + seed).cos())
        .collect()
}

/// Deterministically rebuilds the same journaled device: deploy, three
/// committed update epochs, with queries interleaved so the hot-row cache
/// is warm. Every rebuild reaches the identical journal append count.
fn journaled_device(group_commit: usize) -> Ecssd {
    let mut dev = Ecssd::new(EcssdConfig::tiny());
    dev.enable();
    dev.weight_deploy(&DenseMatrix::random(ROWS, COLS, 21))
        .unwrap();
    dev.enable_journal(JournalConfig {
        group_commit,
        ..JournalConfig::default()
    });
    for round in 0..3u32 {
        let rows = [round as usize + 1, 20 + round as usize, 50];
        let mut batch = UpdateBatch::new(COLS);
        for (i, &r) in rows.iter().enumerate() {
            batch = batch
                .replace(r, fresh_row(i as f32 + round as f32))
                .unwrap();
        }
        dev.stage_update(&batch).unwrap();
        dev.commit_update().unwrap();
        dev.classify_batch(&queries(), 4).unwrap();
    }
    dev
}

#[test]
fn journaled_recovery_loses_no_committed_rows_at_any_crash_instant() {
    let reference = journaled_device(4);
    let appended = reference.journal_appended().unwrap();
    let epoch_before = reference.epoch();
    assert!(appended > 8, "setup must journal a meaningful log");
    let injector = PowerLossInjector::new(0xc4a5);
    for i in 0..6 {
        let k = injector.crash_point(i, appended);
        let mut dev = journaled_device(4);
        dev.power_cut(Some(k));
        let outcome = dev.recover().unwrap();
        assert!(outcome.journaled);
        assert_eq!(
            outcome.rows_lost, 0,
            "instant {k}: a journaled commit must never lose rows"
        );
        assert!(outcome.mapping_consistent, "instant {k}: inconsistent FTL");
        assert!(
            outcome.recovered_epoch <= epoch_before,
            "instant {k}: recovered ahead of the crash"
        );
        assert_eq!(outcome.epoch_before_crash, epoch_before);
        // The device serves again from the recovered epoch.
        let preds = dev.classify_batch(&queries(), 4).unwrap();
        assert_eq!(preds.len(), queries().len());
    }
}

#[test]
fn crash_after_a_flush_recovers_the_exact_pre_crash_state() {
    let mut reference = journaled_device(4);
    let expected = reference.classify_batch(&queries(), 4).unwrap();
    let epoch = reference.epoch();

    let mut dev = journaled_device(4);
    // `None` = crash now: every commit group was flushed, so nothing
    // durable is lost and the device recovers to the pre-crash epoch.
    dev.power_cut(None);
    let outcome = dev.recover().unwrap();
    assert_eq!(outcome.recovered_epoch, epoch);
    assert_eq!(outcome.rows_lost, 0);
    assert!(outcome.replayed_records > 0);
    assert!(outcome.mapping_consistent);
    let after = dev.classify_batch(&queries(), 4).unwrap();
    assert_eq!(
        expected, after,
        "recovered state must serve bit-identically"
    );
}

#[test]
fn recover_to_bounds_the_replay_epoch() {
    let mut dev = journaled_device(1);
    let epoch = dev.epoch();
    assert!(epoch >= 4);
    dev.power_cut(None);
    let outcome = dev.recover_to(epoch - 2).unwrap();
    assert_eq!(outcome.recovered_epoch, epoch - 2);
    assert_eq!(dev.epoch(), epoch - 2);
    assert!(outcome.mapping_consistent);
    dev.classify_batch(&queries(), 4).unwrap();
}

#[test]
fn recovery_invalidates_every_cached_row() {
    // tiny() ships with the hot-row cache disabled; turn it on so the
    // recovery staleness barrier has resident rows to invalidate.
    let config = EcssdConfig::tiny_builder()
        .hot_cache_bytes(64 << 10)
        .build()
        .unwrap();
    let mut dev = Ecssd::new(config);
    dev.enable();
    dev.weight_deploy(&DenseMatrix::random(ROWS, COLS, 21))
        .unwrap();
    dev.enable_journal(JournalConfig::default());
    dev.classify_batch(&queries(), 4).unwrap();
    dev.classify_batch(&queries(), 4).unwrap();
    assert!(
        dev.cache_stats().insertions > 0,
        "setup queries must warm the cache"
    );
    let inv_before = dev.cache_stats().invalidations;
    dev.power_cut(None);
    let outcome = dev.recover().unwrap();
    assert!(
        outcome.cache_invalidations > 0,
        "a warm cache must be invalidated on recovery"
    );
    assert_eq!(
        dev.cache_stats().invalidations,
        inv_before + outcome.cache_invalidations,
        "invalidations must be counted under CacheStats"
    );
}

#[test]
fn unjournaled_crash_loses_the_rows_a_journal_would_keep() {
    let mut dev = Ecssd::new(EcssdConfig::tiny());
    dev.enable();
    dev.weight_deploy(&DenseMatrix::random(ROWS, COLS, 21))
        .unwrap();
    dev.arm_crash_snapshot();
    let snap_epoch = dev.epoch();
    for round in 0..3u32 {
        let batch = UpdateBatch::new(COLS)
            .replace(round as usize + 1, fresh_row(round as f32))
            .unwrap();
        dev.stage_update(&batch).unwrap();
        dev.commit_update().unwrap();
    }
    let epoch_before = dev.epoch();
    dev.power_cut(None);
    let outcome = dev.recover().unwrap();
    assert!(!outcome.journaled);
    assert_eq!(outcome.rows_lost, 3, "every post-snapshot commit is lost");
    assert_eq!(outcome.recovered_epoch, snap_epoch);
    assert_eq!(outcome.epoch_before_crash, epoch_before);
    assert!(outcome.mapping_consistent);
    assert!(outcome.recovery_ns > 0, "the full-device scan costs time");
    dev.classify_batch(&queries(), 4).unwrap();
}

#[test]
fn recovery_without_journal_or_snapshot_is_a_typed_error() {
    let mut dev = Ecssd::new(EcssdConfig::tiny());
    dev.enable();
    dev.weight_deploy(&DenseMatrix::random(ROWS, COLS, 21))
        .unwrap();
    dev.power_cut(None);
    match dev.recover() {
        Err(EcssdError::Recovery(_)) => {}
        other => panic!("expected Recovery error, got {other:?}"),
    }
}

#[test]
fn scrubber_finds_and_repairs_every_latent_page() {
    let mut dev = Ecssd::new(EcssdConfig::tiny());
    dev.enable();
    dev.weight_deploy(&DenseMatrix::random(ROWS, COLS, 21))
        .unwrap();
    dev.device_mut()
        .flash_mut()
        .set_fault_plan(FaultPlan::with_seed(17).with_latent_uecc(0.05));
    // First full patrol: finds and repairs the latent pages.
    let logical = dev.device().ftl().logical_pages();
    let first = dev.scrub_pass(logical);
    assert!(first.latent_found > 0, "plan must seed latent faults");
    assert_eq!(first.repair_programs, first.latent_found);
    assert!(first.peer_reads > 0, "repair reads RAID-5 stripe peers");
    assert!(first.scrub_ns > 0);
    // Second full patrol: the device is clean.
    let second = dev.scrub_pass(logical);
    assert_eq!(second.latent_found, 0, "repairs must persist");
    assert_eq!(dev.scrub_totals().latent_found, first.latent_found);
    dev.classify_batch(&queries(), 4).unwrap();
}

fn latent_machine(policy: DegradationPolicy) -> EcssdMachine {
    let b = Benchmark::by_abbrev("Transformer-W268K").unwrap();
    let w = SampledWorkload::new(b, TraceConfig::paper_default());
    let mut m = EcssdMachine::new(
        EcssdConfig::paper_default(),
        MachineVariant::paper_ecssd().with_degradation(policy),
        Box::new(w),
    )
    .unwrap();
    m.set_fault_plan(FaultPlan::with_seed(13).with_latent_uecc(0.004));
    m
}

#[test]
fn machine_reconstruct_repairs_latent_uecc_rows() {
    let r = latent_machine(DegradationPolicy::Reconstruct)
        .run_window(2, 16)
        .unwrap();
    assert!(r.health.uecc_events > 0, "latent plan never fired");
    assert!(r.health.reconstructed_rows > 0);
    assert_eq!(r.health.unrecovered_rows, 0);
}

#[test]
fn machine_retry_cannot_recover_latent_uecc_rows() {
    // Retrying re-senses the page, but a latent (retention) fault fails
    // every attempt — only reconstruction recovers those rows.
    let r = latent_machine(DegradationPolicy::Retry { max: 3 })
        .run_window(2, 16)
        .unwrap();
    assert!(r.health.uecc_events > 0, "latent plan never fired");
    assert!(r.health.unrecovered_rows > 0);
}
