//! Parallel-shard determinism: enabling `parallel_shards` must not change
//! a single output bit. Shard devices are independent simulations and the
//! merge walks results in shard-index order, so the parallel path is
//! required to be byte-identical to the sequential one — these tests pin
//! that contract for both the functional cluster API and the scale-out
//! throughput study.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ecssd_core::prelude::*;
use ecssd_core::scale::{run_scale_out, run_scale_out_parallel, DramScaling, ScaleOutPlan};

fn weights() -> DenseMatrix {
    let mut w = DenseMatrix::random(1200, 64, 77);
    for r in 0..1200 {
        if r % 9 == 4 {
            for v in w.row_mut(r) {
                *v *= 2.5;
            }
        }
    }
    w
}

fn queries() -> Vec<Vec<f32>> {
    (0..6)
        .map(|q| {
            (0..64)
                .map(|i| ((i as f32) * 0.17 + q as f32 * 0.71).sin())
                .collect()
        })
        .collect()
}

fn classify(parallel: bool) -> Vec<Vec<Score>> {
    let mut config = EcssdConfig::tiny();
    config.parallel_shards = parallel;
    let mut cluster = EcssdCluster::new(config, 3);
    cluster.weight_deploy(&weights()).unwrap();
    cluster
        .filter_threshold(ThresholdPolicy::TopRatio(0.1))
        .unwrap();
    cluster.classify_batch(&queries(), 7).unwrap()
}

/// Bit-exact comparison: `f32` equality would accept `-0.0 == 0.0` and
/// reject NaN; the contract here is stronger — identical bytes.
fn assert_scores_bit_identical(seq: &[Vec<Score>], par: &[Vec<Score>]) {
    assert_eq!(seq.len(), par.len());
    for (s_query, p_query) in seq.iter().zip(par) {
        assert_eq!(s_query.len(), p_query.len());
        for (s, p) in s_query.iter().zip(p_query) {
            assert_eq!(s.category, p.category);
            assert_eq!(
                s.value.to_bits(),
                p.value.to_bits(),
                "score bits diverged: {} vs {}",
                s.value,
                p.value
            );
        }
    }
}

#[test]
fn cluster_parallel_shards_is_bit_identical_to_sequential() {
    let seq = classify(false);
    let par = classify(true);
    assert_scores_bit_identical(&seq, &par);
}

#[test]
fn scale_out_parallel_run_is_byte_identical_to_sequential() {
    let bench = ecssd_workloads::Benchmark::by_abbrev("XMLCNN-S100M").unwrap();
    let plan = ScaleOutPlan::plan(300_000_000, DramScaling::paper_default());
    assert!(plan.devices >= 2, "plan must actually shard");
    let seq = run_scale_out(bench, plan, 1, 4).unwrap();
    let par = run_scale_out_parallel(bench, plan, 1, 4, true).unwrap();
    // Serialize both runs: byte-identical JSON means every f64 in every
    // shard produced exactly the same bits regardless of host threading.
    let seq_json = serde_json::to_string(&seq).unwrap();
    let par_json = serde_json::to_string(&par).unwrap();
    assert_eq!(seq_json, par_json);
}
