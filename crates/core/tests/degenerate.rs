//! Degenerate-configuration tests: the pipeline must stay correct (not just
//! fast) on extreme geometries and workload shapes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ecssd_core::{EcssdConfig, EcssdMachine, MachineVariant};
use ecssd_layout::InterleavingStrategy;
use ecssd_ssd::SsdGeometry;
use ecssd_workloads::{Benchmark, SampledWorkload, TraceConfig};

fn machine_with(
    geometry: SsdGeometry,
    trace: TraceConfig,
    variant: MachineVariant,
) -> EcssdMachine {
    let bench = Benchmark::by_abbrev("GNMT-E32K").unwrap();
    let config = EcssdConfig::builder().geometry(geometry).build().unwrap();
    let workload = SampledWorkload::new(bench, trace);
    EcssdMachine::new(config, variant, Box::new(workload)).unwrap()
}

#[test]
fn single_channel_device_works() {
    let geometry = SsdGeometry {
        channels: 1,
        dies_per_channel: 8,
        ..SsdGeometry::paper_default()
    };
    for interleaving in [
        InterleavingStrategy::Sequential,
        InterleavingStrategy::Uniform,
        InterleavingStrategy::Learned(Default::default()),
    ] {
        let variant = MachineVariant {
            interleaving,
            ..MachineVariant::paper_ecssd()
        };
        let mut m = machine_with(geometry, TraceConfig::paper_default(), variant);
        let r = m.run_window(1, 4).unwrap();
        assert!(r.makespan.as_ns() > 0);
        // One channel: perfectly "balanced" by definition.
        assert_eq!(r.fp_imbalance().idle_channels, 0);
        assert!(r.fp_channel_utilization > 0.0 && r.fp_channel_utilization <= 1.0);
    }
}

#[test]
fn single_die_per_channel_exposes_tr() {
    // With one die per channel and no plane parallelism, tR cannot hide
    // behind other dies; throughput must drop but nothing breaks.
    let fast = SsdGeometry::paper_default();
    let slow = SsdGeometry {
        dies_per_channel: 1,
        planes_per_die: 1,
        ..fast
    };
    let run = |g: SsdGeometry| {
        machine_with(
            g,
            TraceConfig::paper_default(),
            MachineVariant::paper_ecssd(),
        )
        .run_window(1, 8)
        .unwrap()
        .ns_per_query()
    };
    let fast_ns = run(fast);
    let slow_ns = run(slow);
    assert!(slow_ns >= fast_ns, "{slow_ns} vs {fast_ns}");
}

#[test]
fn tiny_tiles_and_full_candidate_ratio_work() {
    let trace = TraceConfig::paper_default()
        .with_tile_rows(32)
        .with_candidate_ratio(1.0);
    let mut m = machine_with(
        SsdGeometry::paper_default(),
        trace,
        MachineVariant::paper_ecssd(),
    );
    let r = m.run_window(1, 4).unwrap();
    // Ratio 1.0: essentially every row of every simulated tile is fetched
    // (the per-tile count jitter may shave a row or two).
    assert!(r.candidate_rows >= 4 * 32 - 6, "{} rows", r.candidate_rows);
    assert!(r.candidate_rows <= 4 * 32);
}

#[test]
fn sixteen_channel_high_end_device_scales() {
    // §2.2: "some high-end SSD products... can have 16 flash channels."
    let wide = SsdGeometry {
        channels: 16,
        ..SsdGeometry::paper_default()
    };
    let run = |g: SsdGeometry| {
        machine_with(
            g,
            TraceConfig::paper_default(),
            MachineVariant::paper_ecssd(),
        )
        .run_window(2, 16)
        .unwrap()
        .ns_per_query()
    };
    let eight = run(SsdGeometry::paper_default());
    let sixteen = run(wide);
    // Doubling channels helps until compute binds; it must never hurt.
    assert!(sixteen <= eight, "16ch {sixteen} vs 8ch {eight}");
}

#[test]
fn single_query_single_tile_window() {
    let mut m = machine_with(
        SsdGeometry::tiny(),
        TraceConfig::paper_default(),
        MachineVariant::paper_ecssd(),
    );
    let r = m.run_window(1, 1).unwrap();
    assert_eq!(r.tiles_simulated, 1);
    assert!(r.makespan.as_ns() > 0);
    assert!(r.ns_per_query_full() > r.ns_per_query());
}
