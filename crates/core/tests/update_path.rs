//! Online-update path on the functional [`Ecssd`] device: staging
//! isolation, atomic commit, cache staleness barrier, LPN recycling, and
//! the bit-identical acceptance property (a served device that applies
//! updates online converges to exactly the state of a quiesced redeploy
//! of the same final weights).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ecssd_core::prelude::*;
use ecssd_core::{RequantPolicy, UpdateBatch, UpdatePolicy};

const ROWS: usize = 256;
const COLS: usize = 64;

fn device() -> Ecssd {
    let mut dev = Ecssd::new(EcssdConfig::tiny());
    dev.enable();
    dev
}

fn query(phase: f32) -> Vec<f32> {
    (0..COLS)
        .map(|i| ((i as f32) * 0.13 + phase).sin())
        .collect()
}

fn queries() -> Vec<Vec<f32>> {
    (0..4).map(|q| query(q as f32 * 0.7)).collect()
}

/// A replacement row correlated with the queries so it lands in the top-k.
fn hot_row(seed: f32) -> Vec<f32> {
    (0..COLS)
        .map(|i| ((i as f32) * 0.13 + seed).sin() * 1.5)
        .collect()
}

fn replace_batch(rows: &[usize]) -> UpdateBatch {
    let mut batch = UpdateBatch::new(COLS);
    for (i, &r) in rows.iter().enumerate() {
        batch = batch.replace(r, hot_row(0.2 + i as f32 * 0.3)).unwrap();
    }
    batch
}

#[test]
fn staged_update_is_invisible_until_commit() {
    let mut dev = device();
    let weights = DenseMatrix::random(ROWS, COLS, 11);
    dev.weight_deploy(&weights).unwrap();
    let before = dev.classify_batch(&queries(), 8).unwrap();

    let report = dev.stage_update(&replace_batch(&[3, 99, 200])).unwrap();
    assert_eq!(report.rows_replaced, 3);
    assert!(report.pages_programmed >= 3);
    assert!(dev.has_staged_update());

    // Version N still serves, bit-identical to pre-stage.
    let during = dev.classify_batch(&queries(), 8).unwrap();
    assert_eq!(before, during, "staged rows must stay invisible");

    let committed = dev.commit_update().unwrap();
    assert!(!dev.has_staged_update());
    assert_eq!(committed.epoch, dev.epoch());
    let after = dev.classify_batch(&queries(), 8).unwrap();
    assert_ne!(before, after, "committed rows must become visible");
}

#[test]
fn online_commit_matches_quiesced_redeploy_bit_identically() {
    // The acceptance property: apply updates to a *serving* device, then
    // compare against a fresh device that deploys the final weights
    // directly. Top-k must agree bitwise.
    let weights = DenseMatrix::random(ROWS, COLS, 13);
    let touched = [1usize, 42, 107, 200, 255];

    let mut online = device();
    online.weight_deploy(&weights).unwrap();
    // Serve some load before, between, and after staged batches.
    online.classify_batch(&queries(), 8).unwrap();
    online.stage_update(&replace_batch(&touched[..2])).unwrap();
    online.classify_batch(&queries(), 8).unwrap();
    online.stage_update(&replace_batch(&touched[2..])).unwrap();
    let report = online.commit_update().unwrap();
    assert_eq!(report.rows_replaced, 5);
    assert!(report.cache_invalidations <= touched.len() as u64);
    let online_topk = online.classify_batch(&queries(), 8).unwrap();

    // Quiesced reference: final weights deployed in one shot.
    let mut final_weights = weights.clone();
    let mut batch_rows = Vec::new();
    for (i, &r) in touched[..2].iter().enumerate() {
        batch_rows.push((r, hot_row(0.2 + i as f32 * 0.3)));
    }
    for (i, &r) in touched[2..].iter().enumerate() {
        batch_rows.push((r, hot_row(0.2 + i as f32 * 0.3)));
    }
    for (r, row) in batch_rows {
        final_weights.row_mut(r).copy_from_slice(&row);
    }
    let mut quiesced = device();
    quiesced.weight_deploy(&final_weights).unwrap();
    let quiesced_topk = quiesced.classify_batch(&queries(), 8).unwrap();

    assert_eq!(
        online_topk, quiesced_topk,
        "online updates must converge to the quiesced deploy bit-for-bit"
    );
}

#[test]
fn commit_invalidates_cached_rows() {
    // tiny() disables the hot-row cache; turn it on for this test.
    let config = EcssdConfig::tiny_builder()
        .hot_cache_bytes(1 << 20)
        .build()
        .unwrap();
    let mut dev = Ecssd::new(config);
    dev.enable();
    let weights = DenseMatrix::random(ROWS, COLS, 17);
    dev.weight_deploy(&weights).unwrap();
    // Warm the hot-row cache with every candidate of this query mix.
    dev.classify_batch(&queries(), 8).unwrap();
    let warm = dev.cache_stats();
    assert!(warm.insertions > 0, "cache must be warm for this test");

    // Replace rows the screener is known to select for these queries
    // (hot_row correlates with query(0.0) by construction).
    let mut batch = UpdateBatch::new(COLS);
    for r in [3usize, 99, 200] {
        batch = batch.replace(r, hot_row(0.0)).unwrap();
    }
    dev.stage_update(&batch).unwrap();
    let report = dev.commit_update().unwrap();
    let stats = dev.cache_stats();
    assert_eq!(stats.invalidations, report.cache_invalidations);
    // Whether a given row was resident depends on the screener, but the
    // device-level invariant holds: no stale row image can be served.
    let after = dev.classify_batch(&queries(), 8).unwrap();
    let mut reference = device();
    let mut final_weights = weights;
    for r in [3usize, 99, 200] {
        final_weights.row_mut(r).copy_from_slice(&hot_row(0.0));
    }
    reference.weight_deploy(&final_weights).unwrap();
    assert_eq!(after, reference.classify_batch(&queries(), 8).unwrap());
}

#[test]
fn epoch_tracks_deploys_and_commits_not_stages_or_aborts() {
    let mut dev = device();
    assert_eq!(dev.epoch(), 0);
    let weights = DenseMatrix::random(ROWS, COLS, 19);
    dev.weight_deploy(&weights).unwrap();
    assert_eq!(dev.epoch(), 1);

    let baseline = dev.classify_batch(&queries(), 8).unwrap();
    dev.stage_update(&replace_batch(&[7])).unwrap();
    assert_eq!(dev.epoch(), 1, "staging must not bump the epoch");
    dev.abort_update().unwrap();
    assert_eq!(dev.epoch(), 1, "abort must not bump the epoch");
    assert!(!dev.has_staged_update());
    assert_eq!(
        baseline,
        dev.classify_batch(&queries(), 8).unwrap(),
        "abort must leave the serving state untouched"
    );

    dev.stage_update(&replace_batch(&[7])).unwrap();
    let report = dev.commit_update().unwrap();
    assert_eq!(dev.epoch(), 2);
    assert_eq!(report.epoch, 2);
    assert!(matches!(
        dev.commit_update(),
        Err(EcssdError::NoStagedUpdate)
    ));
}

#[test]
fn sustained_updates_recycle_lpns_and_keep_ftl_consistent() {
    let mut dev = device();
    let weights = DenseMatrix::random(ROWS, COLS, 23);
    dev.weight_deploy(&weights).unwrap();
    for round in 0..20 {
        let rows = [round % ROWS, (round * 7 + 3) % ROWS];
        let rows = if rows[0] == rows[1] {
            vec![rows[0]]
        } else {
            rows.to_vec()
        };
        dev.stage_update(&replace_batch(&rows)).unwrap();
        dev.commit_update().unwrap();
    }
    // The FTL never accumulates mapping damage under sustained overwrite.
    assert!(dev.device_mut().ftl().mapping_is_consistent());
    let health = dev.health_report();
    assert!(health.update_programs > 0);
    // The device still classifies and matches a quiesced redeploy of its
    // own final weights? (cheap smoke: it still serves top-k correctly)
    let topk = dev.classify_batch(&queries(), 8).unwrap();
    assert_eq!(topk.len(), queries().len());
}

#[test]
fn add_and_remove_reshape_the_category_set() {
    let mut dev = device();
    let weights = DenseMatrix::random(ROWS, COLS, 29);
    dev.weight_deploy(&weights).unwrap();
    assert_eq!(dev.categories(), ROWS);

    let batch = UpdateBatch::new(COLS)
        .add(hot_row(0.0))
        .unwrap()
        .remove(5)
        .unwrap();
    dev.stage_update(&batch).unwrap();
    let report = dev.commit_update().unwrap();
    assert_eq!(report.rows_added, 1);
    assert_eq!(report.rows_removed, 1);
    // Adds grow the category set; removes tombstone (ids stay dense).
    assert_eq!(dev.categories(), ROWS + 1);

    // The appended row correlates with query(0.0) and must be reachable.
    let topk = dev.classify_batch(&[query(0.0)], 8).unwrap();
    assert!(
        topk[0].iter().any(|s| s.category == ROWS),
        "appended category must be servable"
    );
    // The tombstoned row scores exactly zero, so it cannot win top-1.
    assert_ne!(topk[0][0].category, 5);
}

#[test]
fn inplace_policy_detects_drift_and_restores_exactness() {
    let mut dev = device();
    dev.set_update_policy(UpdatePolicy {
        requant: RequantPolicy::InPlace { max_drift: 1.05 },
    });
    let weights = DenseMatrix::random(ROWS, COLS, 31);
    dev.weight_deploy(&weights).unwrap();

    // A replacement with much larger magnitude blows past the deployed
    // scale and must trip the detector into a full re-quantization.
    let loud: Vec<f32> = query(0.4).iter().map(|v| v * 40.0).collect();
    let batch = UpdateBatch::new(COLS).replace(9, loud.clone()).unwrap();
    let report = dev.stage_update(&batch).unwrap();
    assert_eq!(report.rows_reencoded, 1);
    assert!(
        report.drift_requants >= 1,
        "40x magnitude must trip a 1.05 drift bound"
    );
    dev.commit_update().unwrap();

    // The full re-quantization restored ideal scales, so the device is
    // again bit-identical to a quiesced redeploy.
    let mut final_weights = weights;
    final_weights.row_mut(9).copy_from_slice(&loud);
    let mut reference = device();
    reference.weight_deploy(&final_weights).unwrap();
    assert_eq!(
        dev.classify_batch(&queries(), 8).unwrap(),
        reference.classify_batch(&queries(), 8).unwrap()
    );
}

#[test]
fn malformed_batches_are_rejected_cleanly() {
    let mut dev = device();
    let weights = DenseMatrix::random(ROWS, COLS, 37);
    dev.weight_deploy(&weights).unwrap();
    let baseline = dev.classify_batch(&queries(), 8).unwrap();

    // Out-of-range target fails at stage time, not at commit.
    let bad = UpdateBatch::new(COLS)
        .replace(ROWS + 10, hot_row(0.1))
        .unwrap();
    assert!(matches!(dev.stage_update(&bad), Err(EcssdError::Update(_))));
    assert!(!dev.has_staged_update());

    // Builder-level rejections: wrong dims, non-finite, duplicate target.
    assert!(UpdateBatch::new(COLS)
        .replace(0, vec![1.0; COLS + 1])
        .is_err());
    assert!(UpdateBatch::new(COLS)
        .replace(0, vec![f32::NAN; COLS])
        .is_err());
    assert!(UpdateBatch::new(COLS)
        .replace(0, hot_row(0.0))
        .unwrap()
        .remove(0)
        .is_err());

    assert_eq!(baseline, dev.classify_batch(&queries(), 8).unwrap());
}
