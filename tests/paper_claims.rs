//! The paper's headline claims, asserted end-to-end through the public API
//! of the umbrella crate. Each test names the claim it checks.

use ecssd::arch::{EcssdConfig, EcssdMachine, MachineVariant};
use ecssd::baselines::{BaselineArch, BaselineParams};
use ecssd::float::{AcceleratorBudget, AcceleratorEstimate, MacCircuit, MacCircuitModel};
use ecssd::workloads::{Benchmark, SampledWorkload, TraceConfig};

fn ecssd_ns_per_batch(bench: Benchmark) -> f64 {
    let workload = SampledWorkload::new(bench, TraceConfig::paper_default());
    EcssdMachine::new(
        EcssdConfig::paper_default(),
        MachineVariant::paper_ecssd(),
        Box::new(workload),
    )
    .unwrap()
    .run_window(2, 32)
    .unwrap()
    .ns_per_query_full()
}

/// Abstract claim: "ECSSD achieves 3.24-49.87x performance improvements
/// compared with state-of-the-art baselines."
#[test]
fn headline_speedup_range_holds() {
    let bench = Benchmark::by_abbrev("XMLCNN-S100M").unwrap();
    let ecssd = ecssd_ns_per_batch(bench);
    let params = BaselineParams::paper_default();
    let speedups: Vec<f64> = BaselineArch::ALL
        .iter()
        .map(|&a| params.ns_per_batch(a, &bench) / ecssd)
        .collect();
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    // Paper: 3.24x (min) to 49.87x (max); allow the simulator's spread.
    assert!((2.4..4.5).contains(&min), "min speedup {min}");
    assert!((38.0..62.0).contains(&max), "max speedup {max}");
}

/// §3.3: the inserted accelerator obeys the embedded-processor area budget
/// while a naive iso-performance design does not.
#[test]
fn area_budget_guideline_holds() {
    let budget = AcceleratorBudget::cortex_r5();
    assert!(budget.admits(&AcceleratorEstimate::paper_default()));
    assert!(!budget.admits(&AcceleratorEstimate::with_fp_circuit(
        MacCircuit::Naive,
        50.0
    )));
}

/// §4.2: the alignment-free circuit turns a compute-bound design into a
/// memory-bound one — its throughput at the same area crosses the
/// bandwidth-matching requirement that the naive circuit misses.
#[test]
fn alignment_free_crosses_the_bandwidth_requirement() {
    let model = MacCircuitModel::new();
    let area = model.fp_engine(MacCircuit::AlignmentFree, 64).area_um2;
    let required = 34.8; // GFLOPS, LSTM-W33K at 8 GB/s (§4.2)
    assert!(model.fp_gflops_at_area(MacCircuit::Naive, area) < required);
    assert!(model.fp_gflops_at_area(MacCircuit::AlignmentFree, area) > required);
}

/// §1 (challenges) + §6: the three techniques compose — removing any one of
/// them from the full design costs performance on a fetch-heavy benchmark.
#[test]
fn every_technique_contributes() {
    use ecssd::arch::DataPlacement;
    use ecssd::layout::InterleavingStrategy;
    let bench = Benchmark::by_abbrev("LSTM-W33K").unwrap();
    let run = |variant: MachineVariant| {
        let w = SampledWorkload::new(bench, TraceConfig::paper_default());
        EcssdMachine::new(EcssdConfig::paper_default(), variant, Box::new(w))
            .unwrap()
            .run_window(2, 32)
            .unwrap()
            .ns_per_query()
    };
    let full = run(MachineVariant::paper_ecssd());
    for (what, variant) in [
        (
            "naive MAC",
            MachineVariant {
                mac: MacCircuit::Naive,
                ..MachineVariant::paper_ecssd()
            },
        ),
        (
            "homogeneous layout",
            MachineVariant {
                placement: DataPlacement::Homogeneous,
                ..MachineVariant::paper_ecssd()
            },
        ),
        (
            "uniform interleaving",
            MachineVariant {
                interleaving: InterleavingStrategy::Uniform,
                ..MachineVariant::paper_ecssd()
            },
        ),
        (
            "sequential storing",
            MachineVariant {
                interleaving: InterleavingStrategy::Sequential,
                ..MachineVariant::paper_ecssd()
            },
        ),
    ] {
        let degraded = run(variant);
        assert!(
            degraded > full * 1.01,
            "removing {what} should cost time: {degraded} vs {full}"
        );
    }
}

/// §2.1: approximate screening reduces the floating-point work to ~10%.
#[test]
fn screening_reduces_fp_work_to_a_tenth() {
    let bench = Benchmark::by_abbrev("XMLCNN-S10M").unwrap();
    let mut w = SampledWorkload::new(bench, TraceConfig::paper_default());
    use ecssd::workloads::CandidateSource;
    let mut total = 0usize;
    let tiles = 16;
    for t in 0..tiles {
        total += w.candidates(0, t).len();
    }
    let ratio = total as f64 / (tiles * 512) as f64;
    assert!((0.07..0.13).contains(&ratio), "ratio {ratio}");
}
