//! Cross-crate property tests.

use ecssd::arch::{DegradationPolicy, EcssdConfig, EcssdMachine, MachineVariant};
use ecssd::layout::{channel_loads, DeploymentPlanner, InterleavingStrategy, TileLayout};
use ecssd::ssd::{AllocationPolicy, FaultPlan, Ftl, SsdGeometry};
use ecssd::workloads::{Benchmark, SampledWorkload, TraceConfig};
use proptest::prelude::*;

/// Builds a paper-default machine over the W268K trace with `policy`,
/// installs `plan` when given, and runs a short window.
fn faulted_window(
    policy: DegradationPolicy,
    plan: Option<FaultPlan>,
) -> (ecssd::arch::RunReport, Vec<(usize, usize, u64)>) {
    let bench = Benchmark::by_abbrev("Transformer-W268K").unwrap();
    let w = SampledWorkload::new(bench, TraceConfig::paper_default());
    let mut m = EcssdMachine::new(
        EcssdConfig::paper_default(),
        MachineVariant::paper_ecssd().with_degradation(policy),
        Box::new(w),
    )
    .unwrap();
    if let Some(plan) = plan {
        m.set_fault_plan(plan);
    }
    let r = m.run_window(2, 8).unwrap();
    (r, m.skipped().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every interleaving strategy assigns every row to a valid channel and
    /// the learned strategy never produces a worse row-count balance than
    /// sequential storing.
    #[test]
    fn strategies_produce_valid_assignments(
        n in 16usize..600,
        channels in 2usize..16,
        seed in 0u64..1000,
    ) {
        let predicted: Vec<f32> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(seed + 7) % 101) as f32) + 0.5)
            .collect();
        for strategy in [
            InterleavingStrategy::Sequential,
            InterleavingStrategy::Uniform,
            InterleavingStrategy::Learned(Default::default()),
        ] {
            let layout = strategy.assign_tile(0, 4, 0, &predicted, None, channels);
            prop_assert_eq!(layout.len(), n);
            let counts = layout.channel_row_counts();
            prop_assert_eq!(counts.iter().sum::<usize>(), n);
            if let InterleavingStrategy::Learned(_) = strategy {
                // Snake dealing makes counts differ by at most one.
                let max = counts.iter().max().unwrap();
                let min = counts.iter().min().unwrap();
                prop_assert!(max - min <= 1, "counts {:?}", counts);
            }
        }
    }

    /// Channel loads always sum to the candidate count, for any layout.
    #[test]
    fn loads_conserve_candidates(
        assignment in prop::collection::vec(0u8..8, 1..400),
        picks in prop::collection::vec(any::<prop::sample::Index>(), 0..60),
    ) {
        let layout = TileLayout::from_assignment(assignment.clone(), 8);
        let candidates: Vec<usize> = picks.iter().map(|i| i.index(assignment.len())).collect();
        let loads = channel_loads(&layout, &candidates);
        prop_assert_eq!(loads.iter().sum::<u64>(), candidates.len() as u64);
    }

    /// Deployment through the FTL always lands rows on the planned channel,
    /// for arbitrary learned layouts.
    #[test]
    fn deployment_respects_any_plan(
        assignment in prop::collection::vec(0u8..4, 1..120),
        pages_per_row in 1u64..3,
    ) {
        let geometry = SsdGeometry::tiny();
        let mut ftl = Ftl::new(geometry, AllocationPolicy::RangePartitioned, 0.25);
        let mut planner = DeploymentPlanner::new(&ftl, geometry.channels);
        let layout = TileLayout::from_assignment(assignment, geometry.channels);
        let lpns = planner.deploy_tile(&mut ftl, &layout, pages_per_row).unwrap();
        for (row, &lpn) in lpns.iter().enumerate() {
            for p in 0..pages_per_row {
                let addr = ftl.translate(lpn + p).unwrap();
                prop_assert_eq!(addr.channel, layout.channel_of(row));
            }
        }
    }

    /// The machine's makespan never decreases when the candidate ratio
    /// grows (more data must move).
    #[test]
    fn more_candidates_never_run_faster(seed in 0u64..50) {
        let bench = Benchmark::by_abbrev("Transformer-W268K").unwrap();
        let mut times = Vec::new();
        for ratio in [0.05, 0.15] {
            let trace = TraceConfig {
                hotness: ecssd::workloads::HotnessModel::paper_default(seed),
                ..TraceConfig::paper_default().with_candidate_ratio(ratio)
            };
            let w = SampledWorkload::new(bench, trace);
            let mut m = EcssdMachine::new(
                EcssdConfig::paper_default(),
                MachineVariant::paper_ecssd(),
                Box::new(w),
            ).unwrap();
            times.push(m.run_window(1, 8).unwrap().ns_per_query());
        }
        prop_assert!(times[1] > times[0] * 0.99, "{:?}", times);
    }

    /// Same `FaultPlan` seed ⇒ byte-identical `HealthReport`, dropped-row
    /// set, and end-to-end timeline, for every degradation policy.
    #[test]
    fn faulted_runs_replay_byte_identically(
        seed in 0u64..1000,
        uecc in 0.0f64..0.01,
        policy_idx in 0usize..3,
    ) {
        let policy = [
            DegradationPolicy::Retry { max: 2 },
            DegradationPolicy::Reconstruct,
            DegradationPolicy::Skip,
        ][policy_idx];
        let plan = FaultPlan::with_seed(seed)
            .with_uecc(uecc)
            .with_retry_storms(uecc);
        let (ra, da) = faulted_window(policy, Some(plan.clone()));
        let (rb, db) = faulted_window(policy, Some(plan));
        prop_assert_eq!(ra.health.clone(), rb.health.clone());
        prop_assert_eq!(da, db);
        prop_assert_eq!(ra.makespan, rb.makespan);
        prop_assert_eq!(ra, rb);
    }

    /// Fault rate 0.0 (or no plan at all) perturbs nothing: the run is
    /// byte-identical to the fault-free baseline.
    #[test]
    fn inert_plans_do_not_perturb_the_simulation(
        seed in 0u64..1000,
        policy_idx in 0usize..4,
    ) {
        let policy = [
            DegradationPolicy::Fail,
            DegradationPolicy::Retry { max: 3 },
            DegradationPolicy::Reconstruct,
            DegradationPolicy::Skip,
        ][policy_idx];
        let (baseline, _) = faulted_window(DegradationPolicy::Fail, None);
        let inert = FaultPlan::with_seed(seed)
            .with_uecc(0.0)
            .with_retry_storms(0.0);
        prop_assert!(inert.is_inert());
        let (r, dropped) = faulted_window(policy, Some(inert));
        prop_assert_eq!(&r, &baseline);
        prop_assert!(r.health.is_clean());
        prop_assert!(dropped.is_empty());
    }
}
