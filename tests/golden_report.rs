//! Golden-report fixtures for the staged pipeline refactor.
//!
//! Each fixture is the pretty `Debug` rendering of the [`RunReport`] a
//! [`MachineVariant`] preset produces on the `tiny()` geometry. The
//! fixtures were captured from the monolithic pre-refactor `run_window`;
//! the staged execution core must reproduce them bit-identically (same
//! simulated times, same fault accounting, same cache counters).
//!
//! `Debug` formatting is used instead of JSON on purpose: Rust's float
//! formatting is shortest-round-trip and platform-independent, and the
//! comparison needs no extra dependencies. Every quantity in a
//! `RunReport` is deterministic (seeded hash-based workloads and fault
//! plans; no RNG in the timing path), so the fixtures are stable across
//! machines.
//!
//! Regenerate (only when a behaviour change is intended) with:
//! `ECSSD_UPDATE_GOLDEN=1 cargo test --test golden_report`.

use std::path::PathBuf;

use ecssd_core::{
    DataPlacement, DegradationPolicy, EcssdConfig, EcssdMachine, MachineVariant, RunReport,
    TaskKind,
};
use ecssd_ssd::FaultPlan;
use ecssd_workloads::{
    Benchmark, EmbeddingTableTrace, GatherTraceConfig, SampledWorkload, TraceConfig,
};

/// Window used for every fixture: small enough to run in milliseconds,
/// large enough to exercise prefetch, per-tile sync, and the cache.
const QUERIES: usize = 2;
const TILES: usize = 12;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn machine(variant: MachineVariant) -> EcssdMachine {
    let bench = Benchmark::by_abbrev("GNMT-E32K").expect("table-3 benchmark");
    let workload = SampledWorkload::new(bench, TraceConfig::paper_default());
    // Tiny geometry; only the data buffer is widened so one ping-pong
    // bank holds a GNMT tile's candidate rows.
    let config = EcssdConfig::tiny_builder()
        .buffer_bytes(1 << 20)
        .build()
        .expect("valid tiny config");
    EcssdMachine::new(config, variant, Box::new(workload)).expect("INT4 matrix fits tiny DRAM")
}

fn report(variant: MachineVariant, plan: Option<FaultPlan>) -> RunReport {
    let mut m = machine(variant);
    if let Some(plan) = plan {
        m.set_fault_plan(plan);
    }
    m.run_window(QUERIES, TILES).expect("window runs clean")
}

/// A plan that actually fires on the tiny geometry within the window.
fn faulty_plan() -> FaultPlan {
    FaultPlan::with_seed(11).with_uecc(0.02)
}

fn check(name: &str, report: &RunReport) {
    let path = fixture_dir().join(format!("{name}.txt"));
    let rendered = format!("{report:#?}\n");
    if std::env::var_os("ECSSD_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(fixture_dir()).expect("fixture dir");
        std::fs::write(&path, &rendered).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    assert_eq!(
        golden, rendered,
        "RunReport for `{name}` drifted from the pre-refactor golden"
    );
}

#[test]
fn golden_paper_ecssd() {
    check(
        "run_report_paper_ecssd",
        &report(MachineVariant::paper_ecssd(), None),
    );
}

#[test]
fn golden_baseline_start() {
    check(
        "run_report_baseline_start",
        &report(MachineVariant::baseline_start(), None),
    );
}

#[test]
fn golden_overlap_off() {
    let variant = MachineVariant {
        overlap: false,
        ..MachineVariant::paper_ecssd()
    };
    check("run_report_overlap_off", &report(variant, None));
}

#[test]
fn golden_per_tile_sync_off() {
    let variant = MachineVariant {
        per_tile_sync: false,
        ..MachineVariant::paper_ecssd()
    };
    check("run_report_per_tile_sync_off", &report(variant, None));
}

#[test]
fn golden_post_update() {
    // The post-update fixture: a warm window, an online update (fresh
    // placement + program/parity traffic + cache invalidation), then a
    // second window whose report must stay bit-stable — update traffic in
    // the health counters, invalidations in the cache counters, reads
    // queued behind the programs in the makespan.
    let bench = Benchmark::by_abbrev("GNMT-E32K").expect("table-3 benchmark");
    let workload = SampledWorkload::new(bench, TraceConfig::paper_default());
    let config = EcssdConfig::tiny_builder()
        .buffer_bytes(1 << 20)
        .hot_cache_bytes(1 << 20)
        .build()
        .expect("valid tiny config");
    let mut m = EcssdMachine::new(config, MachineVariant::paper_ecssd(), Box::new(workload))
        .expect("INT4 matrix fits tiny DRAM");
    let _ = m
        .run_window(QUERIES, TILES)
        .expect("warm window runs clean");

    let window_rows = m.source().tile_row_range(TILES - 1).end;
    let touched: Vec<u64> = (0..48).map(|i| (i * 97) % window_rows).collect();
    let up = m.apply_update(&touched);
    assert!(up.pages_programmed >= touched.len() as u64);

    let r = m
        .run_window(QUERIES, TILES)
        .expect("post-update window runs clean");
    assert!(
        r.health.update_programs > 0,
        "fixture must carry update traffic"
    );
    check("run_report_post_update", &r);
}

#[test]
fn golden_degradation_fail_inert_plan() {
    // Fail only completes when the plan never fires; an inert plan must
    // leave the run identical to a fault-free one.
    let variant = MachineVariant::paper_ecssd().with_degradation(DegradationPolicy::Fail);
    let r = report(variant, Some(FaultPlan::with_seed(99)));
    assert!(r.health.is_clean(), "inert plan must stay clean");
    check("run_report_degradation_fail", &r);
}

#[test]
fn golden_degradation_retry() {
    let variant =
        MachineVariant::paper_ecssd().with_degradation(DegradationPolicy::Retry { max: 2 });
    let r = report(variant, Some(faulty_plan()));
    assert!(r.health.uecc_events > 0, "fixture must exercise the ladder");
    check("run_report_degradation_retry", &r);
}

#[test]
fn golden_degradation_reconstruct() {
    let variant = MachineVariant::paper_ecssd().with_degradation(DegradationPolicy::Reconstruct);
    let r = report(variant, Some(faulty_plan()));
    assert!(r.health.uecc_events > 0, "fixture must exercise the ladder");
    check("run_report_degradation_reconstruct", &r);
}

#[test]
fn golden_gather_window() {
    // The gather task on the same substrate: the fixture pins the whole
    // timed path (header upload, id streaming, flash fetch, pooling,
    // result transfer) and the `task: EmbeddingGather` report tag.
    let trace = EmbeddingTableTrace::new(
        GatherTraceConfig::recssd_default(42)
            .with_table_rows(1 << 13)
            .with_lookups_per_query(128.0),
    );
    let config = EcssdConfig::tiny_builder()
        .buffer_bytes(1 << 20)
        .hot_cache_bytes(1 << 20)
        .build()
        .expect("valid tiny config");
    let variant = MachineVariant {
        placement: DataPlacement::Homogeneous,
        ..MachineVariant::paper_ecssd()
    };
    let mut m =
        EcssdMachine::new(config, variant, Box::new(trace)).expect("table fits tiny geometry");
    let r = m
        .run_gather_window(QUERIES, TILES)
        .expect("gather window runs clean");
    assert_eq!(r.task, TaskKind::EmbeddingGather);
    assert!(r.candidate_rows > 0, "fixture must gather rows");
    check("run_report_gather", &r);
}

#[test]
fn golden_degradation_skip() {
    let variant = MachineVariant::paper_ecssd().with_degradation(DegradationPolicy::Skip);
    let r = report(variant, Some(faulty_plan()));
    assert!(r.health.uecc_events > 0, "fixture must exercise the ladder");
    check("run_report_degradation_skip", &r);
}
