//! Cross-crate integration tests: the Table-1 API, the performance machine,
//! and the layout/FTL deployment path working together.

use ecssd::arch::{Ecssd, EcssdConfig, EcssdMachine, EcssdMode, MachineVariant};
use ecssd::layout::{DeploymentPlanner, InterleavingStrategy, LearnedConfig};
use ecssd::screen::{full_classify, topk_recall, ClassifyPrecision, DenseMatrix, ThresholdPolicy};
use ecssd::ssd::{AllocationPolicy, Ftl, SimTime, SsdGeometry};
use ecssd::workloads::{
    Benchmark, CandidateSource, ComputedWorkload, SampledWorkload, TraceConfig,
};

fn planted_weights(l: usize, d: usize, seed: u64) -> DenseMatrix {
    let mut w = DenseMatrix::random(l, d, seed);
    for r in 0..l {
        if r % 7 == 2 {
            for v in w.row_mut(r) {
                *v *= 2.5;
            }
        }
    }
    w
}

#[test]
fn api_round_trip_with_mode_switching() {
    let mut dev = Ecssd::new(EcssdConfig::tiny());
    // SSD mode I/O first.
    let t = dev.device_mut().host_write(0, 8, SimTime::ZERO).unwrap();
    dev.device_mut().host_read(0, 8, t).unwrap();
    // Then accelerator mode inference.
    dev.enable();
    assert_eq!(dev.mode(), EcssdMode::Accelerator);
    let weights = planted_weights(512, 64, 3);
    dev.weight_deploy(&weights).unwrap();
    dev.filter_threshold(ThresholdPolicy::TopRatio(0.1))
        .unwrap();
    let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.17).cos()).collect();
    dev.input_send(&x).unwrap();
    dev.int4_screen().unwrap();
    dev.cfp32_classify(3).unwrap();
    let results = dev.get_results().unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].top_k.len(), 3);
    // Results are ranked.
    assert!(results[0].top_k[0].value >= results[0].top_k[1].value);
    // Back to SSD mode, device still serves I/O.
    dev.disable();
    dev.device_mut().host_read(0, 4, SimTime::ZERO).unwrap();
}

#[test]
fn screened_predictions_track_brute_force_on_structured_layers() {
    // Screening recall depends on the JL projection draw: per-seed recall
    // here spans ~0.52–0.85 (mean ~0.70, σ ~0.10), so gating a *single*
    // draw on a tight bound is a coin flip (one seed used to land at
    // 0.675 against a 0.7 gate). Instead — same discipline as the
    // projector's inner-product test — require every projection to be
    // clearly better than chance and bound the recall *averaged over
    // projections* (the quantity the paper's accuracy claims are about)
    // at ~3 standard errors below the observed mean.
    let weights = planted_weights(1024, 128, 5);
    let seeds = 8u64;
    let queries = 8;
    let mut mean_recall = 0.0;
    for seed in 0..seeds {
        let mut dev = Ecssd::new(EcssdConfig::tiny());
        dev.enable();
        dev.weight_deploy_seeded(&weights, 0x5eed ^ seed).unwrap();
        let mut total_recall = 0.0;
        for q in 0..queries {
            let x: Vec<f32> = (0..128)
                .map(|i| ((i as f32) * 0.09 + q as f32 * 0.4).sin())
                .collect();
            dev.input_send(&x).unwrap();
            dev.int4_screen().unwrap();
            dev.cfp32_classify(5).unwrap();
            let pred = &dev.get_results().unwrap()[0];
            let reference = full_classify(&weights, &x, ClassifyPrecision::Fp32).unwrap();
            total_recall += topk_recall(&reference, &pred.top_k, 5).recall();
        }
        let per_seed = total_recall / queries as f64;
        // Chance recall for top-5 of 1024 is ~0.005; every projection must
        // clear a weak per-draw floor even if it is an unlucky one.
        assert!(
            per_seed > 0.4,
            "projection seed {seed}: recall {per_seed} not better than chance"
        );
        mean_recall += per_seed / seeds as f64;
    }
    assert!(mean_recall > 0.6, "mean recall over seeds: {mean_recall}");
}

#[test]
fn computed_and_sampled_workloads_drive_the_same_machine() {
    let bench = Benchmark::by_abbrev("GNMT-E32K").unwrap();
    let trace = TraceConfig::paper_default();
    let sampled = SampledWorkload::new(bench, trace);
    let computed = ComputedWorkload::generate(bench, 2048, trace, 17).unwrap();
    let mut machines = [
        EcssdMachine::new(
            EcssdConfig::paper_default(),
            MachineVariant::paper_ecssd(),
            Box::new(sampled),
        )
        .unwrap(),
        EcssdMachine::new(
            EcssdConfig::paper_default(),
            MachineVariant::paper_ecssd(),
            Box::new(computed),
        )
        .unwrap(),
    ];
    for m in &mut machines {
        let r = m.run_window(2, 4).unwrap();
        assert!(r.makespan.as_ns() > 0);
        assert!(r.candidate_rows > 0);
        assert!(r.fp_channel_utilization > 0.0);
    }
}

#[test]
fn learned_layout_deploys_through_the_stock_ftl() {
    // The full §5.3 path: predict hotness from the *real* INT4 screener of
    // a computed workload, fine-tune with training frequencies, assign
    // channels, deploy via logical addresses, and verify physical
    // placement and balance.
    let bench = Benchmark::by_abbrev("GNMT-E32K").unwrap();
    let mut workload =
        ComputedWorkload::generate(bench, 1024, TraceConfig::paper_default(), 23).unwrap();
    let geometry = SsdGeometry::tiny();
    let mut ftl = Ftl::new(geometry, AllocationPolicy::RangePartitioned, 0.25);
    let mut planner = DeploymentPlanner::new(&ftl, geometry.channels);
    let strategy = InterleavingStrategy::Learned(LearnedConfig::paper_default());

    let tiles = workload.num_tiles().min(2);
    let mut row_lpns = Vec::new();
    for t in 0..tiles {
        let predicted = workload.predicted_hotness(t);
        let freq = workload.training_frequency(t, 12);
        let range = workload.tile_row_range(t);
        let layout = strategy.assign_tile(
            t,
            workload.num_tiles(),
            range.start,
            &predicted,
            Some(&freq),
            geometry.channels,
        );
        let lpns = planner.deploy_tile(&mut ftl, &layout, 1).unwrap();
        row_lpns.push((t, layout, lpns));
    }
    // Candidates of an eval query hit nearly balanced channels.
    for (t, layout, lpns) in &row_lpns {
        let range = workload.tile_row_range(*t);
        let cands = workload.candidates(0, *t);
        let mut per_channel = vec![0u64; geometry.channels];
        for &row in &cands {
            let local = (row - range.start) as usize;
            let addr = ftl.translate(lpns[local]).unwrap();
            assert_eq!(addr.channel, layout.channel_of(local));
            per_channel[addr.channel] += 1;
        }
        let total: u64 = per_channel.iter().sum();
        assert_eq!(total, cands.len() as u64);
    }
}

#[test]
fn ecssd_beats_every_fig8_intermediate_point() {
    use ecssd::arch::DataPlacement;
    use ecssd::float::MacCircuit;
    let bench = Benchmark::by_abbrev("Transformer-W268K").unwrap();
    let run = |variant: MachineVariant| {
        let w = SampledWorkload::new(bench, TraceConfig::paper_default());
        EcssdMachine::new(EcssdConfig::paper_default(), variant, Box::new(w))
            .unwrap()
            .run_window(2, 24)
            .unwrap()
            .ns_per_query()
    };
    let full = run(MachineVariant::paper_ecssd());
    let without_learned = run(MachineVariant {
        interleaving: InterleavingStrategy::Uniform,
        ..MachineVariant::paper_ecssd()
    });
    let without_hetero = run(MachineVariant {
        placement: DataPlacement::Homogeneous,
        ..MachineVariant::paper_ecssd()
    });
    let without_af = run(MachineVariant {
        mac: MacCircuit::Naive,
        ..MachineVariant::paper_ecssd()
    });
    assert!(full < without_learned, "learned interleaving must help");
    assert!(full < without_hetero, "heterogeneous layout must help");
    assert!(full <= without_af, "alignment-free MAC must not hurt");
}
