//! # ECSSD — in-storage computing for extreme classification
//!
//! A full Rust reproduction of *“ECSSD: Hardware/Data Layout Co-Designed
//! In-Storage-Computing Architecture for Extreme Classification”*
//! (Li et al., ISCA 2023): the approximate-screening algorithm, the CFP32
//! alignment-free FP MAC, the heterogeneous data layout, the
//! learning-based adaptive interleaving framework, a discrete-event SSD
//! simulator substrate, the paper's baseline architectures, and an
//! experiment harness that regenerates every table and figure of the
//! evaluation.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`float`] — CFP32 format, MAC circuit models, 28 nm area/power model;
//! * [`screen`] — the approximate screening algorithm (projection, INT4
//!   quantization, threshold filtering, candidate-only classification);
//! * [`ssd`] — the SSD simulator (flash timing, FTL, DRAM, buffers);
//! * [`layout`] — sequential / uniform / learned interleaving;
//! * [`workloads`] — Table-3 benchmarks and candidate-trace generation;
//! * [`arch`] — the ECSSD machine, Table-1 API, the unified `Classifier`
//!   frontend trait, roofline, scaling;
//! * [`serve`] — the sharded batched serving engine (worker thread per
//!   simulated device, submission-queue batching, top-k merge);
//! * [`trace`] — simulated-time observability: spans, counters, per-stage
//!   latency attribution, Chrome `trace_event` export;
//! * [`baselines`] — CPU / GenStore / SmartSSD / GPU / ENMC comparisons.
//!
//! ## Quickstart
//!
//! ```
//! use ecssd::arch::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Power on a device and switch it to accelerator mode.
//! let config = EcssdConfig::tiny_builder().build()?;
//! let mut device = Ecssd::new(config);
//! device.enable();
//!
//! // Deploy a classification layer (L=256 categories, D=64 hidden).
//! let weights = DenseMatrix::random(256, 64, 42);
//! device.deploy(&weights)?;
//! device.filter_threshold(ThresholdPolicy::TopRatio(0.1))?;
//!
//! // Classify a batch of feature vectors.
//! let features: Vec<f32> = (0..64).map(|i| (i as f32 * 0.1).sin()).collect();
//! let predictions = device.classify_batch(&[features], 5)?;
//! assert_eq!(predictions[0].len(), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ecssd_baselines as baselines;
pub use ecssd_core as arch;
pub use ecssd_float as float;
pub use ecssd_layout as layout;
pub use ecssd_screen as screen;
pub use ecssd_serve as serve;
pub use ecssd_ssd as ssd;
pub use ecssd_trace as trace;
pub use ecssd_workloads as workloads;
